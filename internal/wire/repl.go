package wire

import (
	"encoding/binary"
	"fmt"
)

// Replication payloads. The stream is: follower sends REPL_HELLO as the
// first frame of its connection; the primary answers with a hello response
// choosing tail or snapshot mode; REPL_SNAPSHOT and REPL_FRAME frames are
// then pushed primary→follower, while the follower reports progress with
// REPL_ACK frames flowing the other way on the same connection.

// ReplProtoVersion is the replication stream version carried in HELLO.
// Version 2 added the write-lineage epoch to both hello directions.
// Version 3 adds a capability flags byte after the version; a flags-free
// hello still encodes as version 2, so followers without capabilities stay
// wire-identical to older binaries.
const (
	ReplProtoVersion  = 2
	ReplProtoVersion3 = 3
)

// Hello capability flags (version 3).
const (
	// ReplFlagAntiEntropy advertises that the follower can run the
	// Merkle-tree repair conversation instead of a full snapshot.
	ReplFlagAntiEntropy = 1 << 0
)

// Snapshot modes carried in the hello response.
const (
	ReplModeTail        = 0 // log retains everything past lastApplied: tail it
	ReplModeSnapshot    = 1 // fell off the window: full snapshot, then tail
	ReplModeAntiEntropy = 2 // fell off the window with state: Merkle repair, then tail
)

// --- REPL_HELLO request: version | [flags] | epoch | lastApplied ---

// AppendReplHelloReq encodes a follower's subscription request. epoch is
// the write-lineage identifier of the log the follower last replicated
// from (0 when it has never attached), and lastApplied is the highest
// sequence it has durably applied (0 for a fresh follower). A primary only
// grants tail mode when the epoch matches its own log's epoch or the
// follower holds no state at all. Non-zero flags force the version-3
// encoding.
func AppendReplHelloReq(dst []byte, epoch, lastApplied uint64, flags uint8) []byte {
	if flags != 0 {
		dst = append(dst, ReplProtoVersion3, flags)
	} else {
		dst = append(dst, ReplProtoVersion)
	}
	dst = binary.AppendUvarint(dst, epoch)
	return binary.AppendUvarint(dst, lastApplied)
}

// DecodeReplHelloReq decodes a REPL_HELLO request payload; version-2
// hellos decode with flags 0.
func DecodeReplHelloReq(p []byte) (epoch, lastApplied uint64, flags uint8, err error) {
	if len(p) == 0 {
		return 0, 0, 0, fmt.Errorf("%w: empty hello", ErrBadPayload)
	}
	body := p[1:]
	switch p[0] {
	case ReplProtoVersion:
	case ReplProtoVersion3:
		if len(body) == 0 {
			return 0, 0, 0, fmt.Errorf("%w: hello v3 missing flags", ErrBadPayload)
		}
		flags = body[0]
		body = body[1:]
	default:
		return 0, 0, 0, fmt.Errorf("%w: repl proto version %d", ErrBadPayload, p[0])
	}
	epoch, rest, err := getUvarint(body)
	if err != nil {
		return 0, 0, 0, err
	}
	lastApplied, rest, err = getUvarint(rest)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(rest) != 0 {
		return 0, 0, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return epoch, lastApplied, flags, nil
}

// --- REPL_HELLO response: mode | epoch | startSeq ---

// AppendReplHelloResp encodes the primary's answer. epoch is the primary
// log's write-lineage identifier; the follower records it and presents it
// on subsequent hellos. In tail mode startSeq is the follower's
// lastApplied echoed back (frames with base > startSeq follow); in
// snapshot mode it is the pinned snapshot sequence the streamed entries
// are tagged with, and tailing resumes past it.
func AppendReplHelloResp(dst []byte, mode uint8, epoch, startSeq uint64) []byte {
	dst = append(dst, mode)
	dst = binary.AppendUvarint(dst, epoch)
	return binary.AppendUvarint(dst, startSeq)
}

// DecodeReplHelloResp decodes a hello response payload.
func DecodeReplHelloResp(p []byte) (mode uint8, epoch, startSeq uint64, err error) {
	if len(p) == 0 {
		return 0, 0, 0, fmt.Errorf("%w: empty hello response", ErrBadPayload)
	}
	mode = p[0]
	if mode != ReplModeTail && mode != ReplModeSnapshot && mode != ReplModeAntiEntropy {
		return 0, 0, 0, fmt.Errorf("%w: repl mode %d", ErrBadPayload, mode)
	}
	epoch, rest, err := getUvarint(p[1:])
	if err != nil {
		return 0, 0, 0, err
	}
	startSeq, rest, err = getUvarint(rest)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(rest) != 0 {
		return 0, 0, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return mode, epoch, startSeq, nil
}

// --- REPL_FRAME push: base | count | per op: kind | klen | key | [vlen | value] ---
//
// One frame carries one committed batch; op i holds sequence base+i, so the
// frame is self-describing for apply-at-seq on the follower.

// AppendReplFrame encodes one shipped log entry.
func AppendReplFrame(dst []byte, base uint64, ops []BatchOp) []byte {
	dst = binary.AppendUvarint(dst, base)
	return AppendBatchReq(dst, ops)
}

// DecodeReplFrame decodes a REPL_FRAME payload; op slices alias p.
func DecodeReplFrame(p []byte) (base uint64, ops []BatchOp, err error) {
	base, rest, err := getUvarint(p)
	if err != nil {
		return 0, nil, err
	}
	if base == 0 {
		return 0, nil, fmt.Errorf("%w: repl frame base 0", ErrBadPayload)
	}
	ops, err = DecodeBatchReq(rest)
	if err != nil {
		return 0, nil, err
	}
	if len(ops) == 0 {
		return 0, nil, fmt.Errorf("%w: empty repl frame", ErrBadPayload)
	}
	return base, ops, nil
}

// --- REPL_ACK: appliedSeq ---

// AppendReplAck encodes a follower progress report.
func AppendReplAck(dst []byte, appliedSeq uint64) []byte {
	return binary.AppendUvarint(dst, appliedSeq)
}

// DecodeReplAck decodes a REPL_ACK payload.
func DecodeReplAck(p []byte) (appliedSeq uint64, err error) {
	appliedSeq, rest, err := getUvarint(p)
	if err != nil {
		return 0, err
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return appliedSeq, nil
}

// --- REPL_SNAPSHOT push: done | seq | count | per pair: klen | key | vlen | value ---

// AppendReplSnapshot encodes one snapshot chunk. seq is the pinned snapshot
// sequence every streamed pair is applied at; done marks the final chunk
// (which may carry zero pairs).
func AppendReplSnapshot(dst []byte, seq uint64, kvs []KV, done bool) []byte {
	if done {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.AppendUvarint(dst, seq)
	return AppendScanResp(dst, kvs)
}

// DecodeReplSnapshot decodes a snapshot chunk; pair slices alias p.
func DecodeReplSnapshot(p []byte) (seq uint64, kvs []KV, done bool, err error) {
	if len(p) == 0 {
		return 0, nil, false, fmt.Errorf("%w: empty snapshot chunk", ErrBadPayload)
	}
	switch p[0] {
	case 0:
	case 1:
		done = true
	default:
		return 0, nil, false, fmt.Errorf("%w: snapshot done byte %d", ErrBadPayload, p[0])
	}
	seq, rest, err := getUvarint(p[1:])
	if err != nil {
		return 0, nil, false, err
	}
	kvs, err = DecodeScanResp(rest)
	if err != nil {
		return 0, nil, false, err
	}
	if !done && len(kvs) == 0 {
		return 0, nil, false, fmt.Errorf("%w: empty non-final snapshot chunk", ErrBadPayload)
	}
	return seq, kvs, done, nil
}

// --- TREE_ROOT push: bits | 32-byte root hash ---

// TreeHashLen is the Merkle node digest size on the wire.
const TreeHashLen = 32

// treeMaxBits bounds the advertised tree geometry; mirrors merkle.MaxBits
// without importing it (asserted in repl's tests).
const treeMaxBits = 16

// treeMaxIDs bounds a TREE_DIFF id list at the full node count of a
// treeMaxBits-deep tree; anything larger is a corrupt or hostile frame.
const treeMaxIDs = 2 << treeMaxBits

// AppendTreeRoot encodes the anti-entropy opener: the primary tree's leaf
// exponent and root digest.
func AppendTreeRoot(dst []byte, bits int, root [TreeHashLen]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(bits))
	return append(dst, root[:]...)
}

// DecodeTreeRoot decodes a TREE_ROOT payload.
func DecodeTreeRoot(p []byte) (bits int, root [TreeHashLen]byte, err error) {
	b, rest, err := getUvarint(p)
	if err != nil {
		return 0, root, err
	}
	if b < 1 || b > treeMaxBits {
		return 0, root, fmt.Errorf("%w: tree bits %d", ErrBadPayload, b)
	}
	if len(rest) != TreeHashLen {
		return 0, root, fmt.Errorf("%w: tree root %d bytes", ErrBadPayload, len(rest))
	}
	copy(root[:], rest)
	return int(b), root, nil
}

// --- TREE_DIFF: flags | count | ids... | [count × 32-byte hashes] ---
//
// The follower walks the primary's tree with hash queries (flags 0: "send
// me these nodes' hashes"); the primary answers with TreeDiffHashes set and
// the digests appended. The walk ends with a TreeDiffFetch request naming
// the divergent leaf ids, which the primary answers with REPL_SNAPSHOT
// chunks restricted to those leaf ranges.

// TREE_DIFF flags.
const (
	// TreeDiffFetch asks the primary to stream the listed leaves' ranges.
	TreeDiffFetch = 1 << 0
	// TreeDiffHashes marks a response carrying one digest per id.
	TreeDiffHashes = 1 << 1
)

// AppendTreeDiff encodes a TREE_DIFF payload. hashes must be nil unless
// flags has TreeDiffHashes, in which case len(hashes) == len(ids).
func AppendTreeDiff(dst []byte, flags uint8, ids []uint32, hashes [][TreeHashLen]byte) []byte {
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	for _, h := range hashes {
		dst = append(dst, h[:]...)
	}
	return dst
}

// DecodeTreeDiff decodes a TREE_DIFF payload.
func DecodeTreeDiff(p []byte) (flags uint8, ids []uint32, hashes [][TreeHashLen]byte, err error) {
	if len(p) == 0 {
		return 0, nil, nil, fmt.Errorf("%w: empty tree diff", ErrBadPayload)
	}
	flags = p[0]
	if flags&^uint8(TreeDiffFetch|TreeDiffHashes) != 0 {
		return 0, nil, nil, fmt.Errorf("%w: tree diff flags %#x", ErrBadPayload, flags)
	}
	count, rest, err := getUvarint(p[1:])
	if err != nil {
		return 0, nil, nil, err
	}
	// count 0 is legal: an empty TreeDiffFetch means "nothing diverged".
	if count > treeMaxIDs {
		return 0, nil, nil, fmt.Errorf("%w: tree diff count %d", ErrBadPayload, count)
	}
	ids = make([]uint32, count)
	for i := range ids {
		var id uint64
		id, rest, err = getUvarint(rest)
		if err != nil {
			return 0, nil, nil, err
		}
		if id < 1 || id >= 2<<treeMaxBits {
			return 0, nil, nil, fmt.Errorf("%w: tree node id %d", ErrBadPayload, id)
		}
		ids[i] = uint32(id)
	}
	if flags&TreeDiffHashes != 0 {
		if len(rest) != int(count)*TreeHashLen {
			return 0, nil, nil, fmt.Errorf("%w: tree diff hashes %d bytes for %d ids", ErrBadPayload, len(rest), count)
		}
		hashes = make([][TreeHashLen]byte, count)
		for i := range hashes {
			copy(hashes[i][:], rest[i*TreeHashLen:])
		}
		rest = rest[count*TreeHashLen:]
	}
	if len(rest) != 0 {
		return 0, nil, nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return flags, ids, hashes, nil
}
