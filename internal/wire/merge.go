package wire

import (
	"encoding/binary"
	"fmt"
)

// INCR codecs. An INCR request names a counter key and a signed int64
// delta; the server folds concurrent deltas to the same key into one
// net-delta write and answers with the post-merge value. The v2 (INCR2)
// request reuses the v1 payload — like the other v2 write ops, only the
// response differs: it prefixes the committed sequence so sessions can
// gate follower reads on their own increments.

// --- INCR request: klen | key | varint delta (nothing may follow) ---

// AppendIncrReq encodes an INCR/INCR2 request payload.
func AppendIncrReq(dst, key []byte, delta int64) []byte {
	dst = appendBytes(dst, key)
	return binary.AppendVarint(dst, delta)
}

// DecodeIncrReq decodes an INCR/INCR2 payload; key aliases p.
func DecodeIncrReq(p []byte) (key []byte, delta int64, err error) {
	key, rest, err := getBytes(p, MaxKeyLen)
	if err != nil {
		return nil, 0, err
	}
	if len(key) == 0 {
		return nil, 0, fmt.Errorf("%w: empty key", ErrBadPayload)
	}
	delta, rest, err = getVarint(rest)
	if err != nil {
		return nil, 0, err
	}
	if len(rest) != 0 {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return key, delta, nil
}

// --- INCR response: varint post-merge value ---

// AppendIncrResp encodes an INCR success response.
func AppendIncrResp(dst []byte, value int64) []byte {
	return binary.AppendVarint(dst, value)
}

// DecodeIncrResp decodes an INCR success response.
func DecodeIncrResp(p []byte) (int64, error) {
	value, rest, err := getVarint(p)
	if err != nil {
		return 0, err
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return value, nil
}

// --- INCR2 response: uvarint appliedSeq | uvarint epoch | varint value ---

// AppendIncrV2Resp encodes an INCR2 success response.
func AppendIncrV2Resp(dst []byte, appliedSeq, epoch uint64, value int64) []byte {
	dst = binary.AppendUvarint(dst, appliedSeq)
	dst = binary.AppendUvarint(dst, epoch)
	return binary.AppendVarint(dst, value)
}

// DecodeIncrV2Resp decodes an INCR2 success response.
func DecodeIncrV2Resp(p []byte) (appliedSeq, epoch uint64, value int64, err error) {
	appliedSeq, epoch, rest, err := getSeqEpoch(p)
	if err != nil {
		return 0, 0, 0, err
	}
	value, rest, err = getVarint(rest)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(rest) != 0 {
		return 0, 0, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return appliedSeq, epoch, value, nil
}
