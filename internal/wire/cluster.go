package wire

import (
	"encoding/binary"
	"fmt"
)

// Cluster payloads: the versioned shard map, the handoff admin/stream
// messages, and the filtered log frame used while a slot range migrates.
//
// A shard map assigns every consistent-hash slot to one primary group.
// Clients fetch it with OpShardMap, cache it, and route each key directly
// to the owning node; a node that receives a keyed op for a slot it does
// not own answers StatusWrongShard with its current map as the payload, so
// one stale round trip both refreshes the client and redirects the op.

const (
	// MaxShardGroups bounds the group table a map may declare.
	MaxShardGroups = 1024
	// MaxShardSlots bounds the slot table a map may declare.
	MaxShardSlots = 16384
	// MaxShardAddrLen bounds one group address string.
	MaxShardAddrLen = 256
)

// ShardMap is the cluster routing table: Slots[i] is the index into Groups
// of the primary group owning slot i. Version is bumped on every ownership
// change; clients keep the highest version they have seen.
type ShardMap struct {
	Version uint64
	Groups  []string // primary address per group
	Slots   []uint32 // owning group index per slot
}

// ValidateShardMap checks the structural invariants every decoded or
// installed map must hold.
func ValidateShardMap(m *ShardMap) error {
	if m.Version == 0 {
		return fmt.Errorf("%w: shard map version 0", ErrBadPayload)
	}
	if len(m.Groups) == 0 || len(m.Groups) > MaxShardGroups {
		return fmt.Errorf("%w: shard map with %d groups", ErrBadPayload, len(m.Groups))
	}
	if len(m.Slots) == 0 || len(m.Slots) > MaxShardSlots {
		return fmt.Errorf("%w: shard map with %d slots", ErrBadPayload, len(m.Slots))
	}
	for _, a := range m.Groups {
		if len(a) == 0 || len(a) > MaxShardAddrLen {
			return fmt.Errorf("%w: shard map address length %d", ErrBadPayload, len(a))
		}
	}
	for s, g := range m.Slots {
		if int(g) >= len(m.Groups) {
			return fmt.Errorf("%w: slot %d owned by group %d of %d", ErrBadPayload, s, g, len(m.Groups))
		}
	}
	return nil
}

// --- SHARDMAP payload: version | ngroups | per group: alen | addr |
//     nslots | per slot: uvarint owner ---

// AppendShardMap encodes a shard map. It assumes m passes ValidateShardMap.
func AppendShardMap(dst []byte, m *ShardMap) []byte {
	dst = binary.AppendUvarint(dst, m.Version)
	dst = binary.AppendUvarint(dst, uint64(len(m.Groups)))
	for _, a := range m.Groups {
		dst = appendBytes(dst, []byte(a))
	}
	dst = binary.AppendUvarint(dst, uint64(len(m.Slots)))
	for _, g := range m.Slots {
		dst = binary.AppendUvarint(dst, uint64(g))
	}
	return dst
}

// DecodeShardMap decodes and validates a shard map payload. The returned
// map does not alias p.
func DecodeShardMap(p []byte) (*ShardMap, error) {
	var m ShardMap
	var err error
	m.Version, p, err = getUvarint(p)
	if err != nil {
		return nil, err
	}
	if m.Version == 0 {
		return nil, fmt.Errorf("%w: shard map version 0", ErrBadPayload)
	}
	ngroups, p, err := getUvarint(p)
	if err != nil {
		return nil, err
	}
	if ngroups == 0 || ngroups > MaxShardGroups {
		return nil, fmt.Errorf("%w: shard map with %d groups", ErrBadPayload, ngroups)
	}
	m.Groups = make([]string, 0, ngroups)
	for i := uint64(0); i < ngroups; i++ {
		var a []byte
		a, p, err = getBytes(p, MaxShardAddrLen)
		if err != nil {
			return nil, err
		}
		if len(a) == 0 {
			return nil, fmt.Errorf("%w: empty shard map address", ErrBadPayload)
		}
		m.Groups = append(m.Groups, string(a))
	}
	nslots, p, err := getUvarint(p)
	if err != nil {
		return nil, err
	}
	if nslots == 0 || nslots > MaxShardSlots {
		return nil, fmt.Errorf("%w: shard map with %d slots", ErrBadPayload, nslots)
	}
	m.Slots = make([]uint32, 0, nslots)
	for i := uint64(0); i < nslots; i++ {
		var g uint64
		g, p, err = getUvarint(p)
		if err != nil {
			return nil, err
		}
		if g >= ngroups {
			return nil, fmt.Errorf("%w: slot %d owned by group %d of %d", ErrBadPayload, i, g, ngroups)
		}
		m.Slots = append(m.Slots, uint32(g))
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(p))
	}
	return &m, nil
}

// --- HANDOFF request: count | per slot: uvarint slot ---
//
// The admin trigger, sent to the *target* node, which pulls the named slots
// from their current owner. The success response carries the new shard map
// (AppendShardMap) after the flip.

// AppendHandoffReq encodes a HANDOFF admin request.
func AppendHandoffReq(dst []byte, slots []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(slots)))
	for _, s := range slots {
		dst = binary.AppendUvarint(dst, uint64(s))
	}
	return dst
}

// DecodeHandoffReq decodes a HANDOFF admin request.
func DecodeHandoffReq(p []byte) ([]uint32, error) {
	count, rest, err := getUvarint(p)
	if err != nil {
		return nil, err
	}
	if count == 0 || count > MaxShardSlots {
		return nil, fmt.Errorf("%w: handoff of %d slots", ErrBadPayload, count)
	}
	slots := make([]uint32, 0, count)
	for i := uint64(0); i < count; i++ {
		var s uint64
		s, rest, err = getUvarint(rest)
		if err != nil {
			return nil, err
		}
		if s >= MaxShardSlots {
			return nil, fmt.Errorf("%w: handoff slot %d", ErrBadPayload, s)
		}
		slots = append(slots, uint32(s))
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return slots, nil
}

// --- HANDOFF_HELLO request: targetGroup | count | per slot: uvarint slot ---
//
// First frame on a handoff stream, target→source. targetGroup is the
// map index the slots will flip to. The response is:
//
//	mapVersion | snapSeq
//
// where mapVersion is the source's current map version (the flip will
// install mapVersion+1) and snapSeq the pinned sequence the snapshot
// chunks that follow are consistent at.

// AppendHandoffHelloReq encodes a HANDOFF_HELLO request.
func AppendHandoffHelloReq(dst []byte, targetGroup uint32, slots []uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(targetGroup))
	return AppendHandoffReq(dst, slots)
}

// DecodeHandoffHelloReq decodes a HANDOFF_HELLO request.
func DecodeHandoffHelloReq(p []byte) (targetGroup uint32, slots []uint32, err error) {
	g, rest, err := getUvarint(p)
	if err != nil {
		return 0, nil, err
	}
	if g >= MaxShardGroups {
		return 0, nil, fmt.Errorf("%w: handoff target group %d", ErrBadPayload, g)
	}
	slots, err = DecodeHandoffReq(rest)
	if err != nil {
		return 0, nil, err
	}
	return uint32(g), slots, nil
}

// AppendHandoffHelloResp encodes a HANDOFF_HELLO success response.
func AppendHandoffHelloResp(dst []byte, mapVersion, snapSeq uint64) []byte {
	dst = binary.AppendUvarint(dst, mapVersion)
	return binary.AppendUvarint(dst, snapSeq)
}

// DecodeHandoffHelloResp decodes a HANDOFF_HELLO success response.
func DecodeHandoffHelloResp(p []byte) (mapVersion, snapSeq uint64, err error) {
	mapVersion, rest, err := getUvarint(p)
	if err != nil {
		return 0, 0, err
	}
	snapSeq, rest, err = getUvarint(rest)
	if err != nil {
		return 0, 0, err
	}
	if len(rest) != 0 {
		return 0, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return mapVersion, snapSeq, nil
}

// --- HANDOFF_FLIP ---
//
// Sent target→source on the handoff stream once the target has applied the
// full snapshot; an empty request body. The source keeps shipping tail
// frames, flips ownership, and answers with the *new* shard map
// (AppendShardMap) — written after the final REPL_FRAME2, so by stream
// order the target holds every pre-flip write when the response arrives.

// --- REPL_FRAME2 push: base | last | count | ops ---
//
// The handoff variant of REPL_FRAME: [base,last] is the sequence window
// the source consumed from its log, and ops are the writes within it that
// survived slot filtering — possibly none. The explicit window lets the
// target track source progress even when every op in a batch belonged to a
// slot that is not moving.

// AppendReplFrame2 encodes one filtered log window.
func AppendReplFrame2(dst []byte, base, last uint64, ops []BatchOp) []byte {
	dst = binary.AppendUvarint(dst, base)
	dst = binary.AppendUvarint(dst, last)
	return AppendBatchReq(dst, ops)
}

// DecodeReplFrame2 decodes a REPL_FRAME2 payload; op slices alias p.
func DecodeReplFrame2(p []byte) (base, last uint64, ops []BatchOp, err error) {
	base, rest, err := getUvarint(p)
	if err != nil {
		return 0, 0, nil, err
	}
	if base == 0 {
		return 0, 0, nil, fmt.Errorf("%w: repl frame base 0", ErrBadPayload)
	}
	last, rest, err = getUvarint(rest)
	if err != nil {
		return 0, 0, nil, err
	}
	if last < base {
		return 0, 0, nil, fmt.Errorf("%w: repl frame window [%d,%d]", ErrBadPayload, base, last)
	}
	ops, err = DecodeBatchReq(rest)
	if err != nil {
		return 0, 0, nil, err
	}
	return base, last, ops, nil
}
