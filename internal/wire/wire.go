// Package wire implements hyperd's framed binary protocol.
//
// Every message — request or response — travels as one frame:
//
//	uint32   length   big-endian, bytes that follow (body), 14 ≤ length ≤ MaxFrame
//	uint8    op       request op code (echoed in responses)
//	uint8    status   0 in requests; a Status code in responses
//	uint64   id       big-endian request id, chosen by the client, echoed back
//	[]byte   payload  op-specific encoding (see the Append*/Decode* pairs)
//	uint32   crc      big-endian CRC-32 (IEEE) over op..payload
//
// Integers inside payloads are unsigned varints (encoding/binary); byte
// strings are varint-length-prefixed. The codec never panics on malformed
// input and never allocates more than the declared (and bounds-checked)
// frame length, so arbitrary bytes from the network are safe to feed in —
// see FuzzDecodeFrame.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Op identifies a request type.
type Op uint8

// Request op codes. Zero is reserved so an all-zero frame is invalid.
const (
	OpPing Op = iota + 1
	OpPut
	OpGet
	OpDel
	OpBatch
	OpMGet
	OpScan
	OpStats

	// Replication ops (primary↔follower log shipping, package repl).
	// OpReplHello opens a replication stream and must be the first frame on
	// its connection; OpReplFrame and OpReplSnapshot are server→follower
	// pushes; OpReplAck is the follower's applied-seq report.
	OpReplHello
	OpReplFrame
	OpReplAck
	OpReplSnapshot

	// Session (payload version 2) ops. Requests for the read ops carry a
	// minSeq token: the server answers only once its applied replication
	// position reaches minSeq, or StatusNotReady after a bounded wait.
	// Every v2 response carries the node's applied sequence so clients can
	// maintain read-your-writes and monotonic-reads session tokens. The v2
	// write ops take the v1 request payloads; only their responses differ
	// (they return the batch's committed sequence).
	OpGetV2
	OpMGetV2
	OpScanV2
	OpPutV2
	OpDelV2
	OpBatchV2

	// Merge ops. OpIncr adds an int64 delta to a counter key and returns
	// the post-merge value; OpIncrV2 is the session variant whose response
	// also carries the committed sequence. Deltas to the same key coalesce
	// in the server drainer and commit as a single net-delta write.
	OpIncr
	OpIncrV2

	// Cluster ops (package cluster). OpShardMap fetches the node's current
	// shard map; every StatusWrongShard response also carries one, so a
	// stale client refreshes for free. OpHandoff is the admin trigger: the
	// receiving node becomes the *target* of a slot migration and pulls the
	// range from its current owner. OpHandoffHello opens a handoff stream
	// (target→source, first frame on its connection, like OpReplHello);
	// OpHandoffFlip is the target's in-stream request for the source to
	// flip ownership; OpReplFrame2 is the handoff variant of OpReplFrame
	// whose explicit [base,last] window may contain zero surviving ops
	// after slot filtering.
	OpShardMap
	OpHandoff
	OpHandoffHello
	OpHandoffFlip
	OpReplFrame2

	// Anti-entropy ops (Merkle-tree replica repair, package repl).
	// OpTreeRoot is the primary's opening push on an anti-entropy stream:
	// tree geometry plus root hash. OpTreeDiff flows both ways — the
	// follower queries node hashes (or requests leaf-range fetches) and the
	// primary answers with the hashes.
	OpTreeRoot
	OpTreeDiff

	opMax
)

// Valid reports whether o is a known op code.
func (o Op) Valid() bool { return o >= OpPing && o < opMax }

func (o Op) String() string {
	switch o {
	case OpPing:
		return "PING"
	case OpPut:
		return "PUT"
	case OpGet:
		return "GET"
	case OpDel:
		return "DEL"
	case OpBatch:
		return "BATCH"
	case OpMGet:
		return "MGET"
	case OpScan:
		return "SCAN"
	case OpStats:
		return "STATS"
	case OpReplHello:
		return "REPL_HELLO"
	case OpReplFrame:
		return "REPL_FRAME"
	case OpReplAck:
		return "REPL_ACK"
	case OpReplSnapshot:
		return "REPL_SNAPSHOT"
	case OpGetV2:
		return "GET2"
	case OpMGetV2:
		return "MGET2"
	case OpScanV2:
		return "SCAN2"
	case OpPutV2:
		return "PUT2"
	case OpDelV2:
		return "DEL2"
	case OpBatchV2:
		return "BATCH2"
	case OpIncr:
		return "INCR"
	case OpIncrV2:
		return "INCR2"
	case OpShardMap:
		return "SHARDMAP"
	case OpHandoff:
		return "HANDOFF"
	case OpHandoffHello:
		return "HANDOFF_HELLO"
	case OpHandoffFlip:
		return "HANDOFF_FLIP"
	case OpReplFrame2:
		return "REPL_FRAME2"
	case OpTreeRoot:
		return "TREE_ROOT"
	case OpTreeDiff:
		return "TREE_DIFF"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Status is a response outcome code, carried in the frame's status byte.
type Status uint8

const (
	StatusOK Status = iota
	StatusNotFound
	StatusBadRequest   // payload decodes but the request is invalid
	StatusError        // engine error; payload is the message text
	StatusShuttingDown // server is shutting down and refused the request
	// StatusNotReady answers a session read whose minSeq token the node
	// could not reach within its bounded wait: the client should retry on
	// another node (typically falling back to the primary). The payload is
	// the node's applied sequence at the time of the refusal.
	StatusNotReady
	// StatusRateLimited answers a request rejected by the connection's
	// admission token bucket before it reached the drainer. The client may
	// retry after backing off; the payload is the message text.
	StatusRateLimited
	// StatusWrongShard answers a keyed op whose slot this node does not
	// own. The payload is the node's current shard map (EncodeShardMap),
	// so the client refreshes its routing table and retries against the
	// real owner without an extra round trip.
	StatusWrongShard
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not found"
	case StatusBadRequest:
		return "bad request"
	case StatusError:
		return "error"
	case StatusShuttingDown:
		return "shutting down"
	case StatusNotReady:
		return "not ready"
	case StatusRateLimited:
		return "rate limited"
	case StatusWrongShard:
		return "wrong shard"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

const (
	// MaxFrame bounds the body length a peer may declare. Decoders reject
	// larger claims before allocating, so a hostile 4-byte prefix cannot
	// force a large allocation.
	MaxFrame = 16 << 20

	// minBody is op(1)+status(1)+id(8)+crc(4) with an empty payload.
	minBody   = 14
	headerLen = 10 // op+status+id, before the payload
)

// Protocol errors. ErrTruncated means more bytes may complete the frame;
// every other decode error is terminal for the stream.
var (
	ErrTruncated     = errors.New("wire: truncated frame")
	ErrFrameTooLarge = errors.New("wire: frame exceeds max size")
	ErrFrameTooSmall = errors.New("wire: frame below minimum size")
	ErrBadCRC        = errors.New("wire: frame CRC mismatch")
	ErrBadPayload    = errors.New("wire: malformed payload")
)

// Frame is one decoded protocol frame. Payload aliases the decode buffer.
type Frame struct {
	Op      Op
	Status  Status
	ID      uint64
	Payload []byte
}

// EncodedLen returns the full on-wire size of a frame with payloadLen
// payload bytes.
func EncodedLen(payloadLen int) int { return 4 + minBody + payloadLen }

// AppendFrame appends the encoded frame to dst and returns the result.
func AppendFrame(dst []byte, f Frame) []byte {
	body := headerLen + len(f.Payload) + 4
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	crcFrom := len(dst)
	dst = append(dst, byte(f.Op), byte(f.Status))
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	dst = append(dst, f.Payload...)
	crc := crc32.ChecksumIEEE(dst[crcFrom:])
	return binary.BigEndian.AppendUint32(dst, crc)
}

// DecodeFrame parses one frame from the start of buf, returning the frame
// and the number of bytes consumed. The returned payload aliases buf. It
// never panics and never allocates, whatever buf holds.
func DecodeFrame(buf []byte, maxFrame uint32) (Frame, int, error) {
	if maxFrame == 0 || maxFrame > MaxFrame {
		maxFrame = MaxFrame
	}
	if len(buf) < 4 {
		return Frame{}, 0, ErrTruncated
	}
	body := binary.BigEndian.Uint32(buf)
	if body < minBody {
		return Frame{}, 0, ErrFrameTooSmall
	}
	if body > maxFrame {
		return Frame{}, 0, ErrFrameTooLarge
	}
	total := 4 + int(body)
	if len(buf) < total {
		return Frame{}, 0, ErrTruncated
	}
	b := buf[4:total]
	want := binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(b[:len(b)-4]) != want {
		return Frame{}, 0, ErrBadCRC
	}
	f := Frame{
		Op:      Op(b[0]),
		Status:  Status(b[1]),
		ID:      binary.BigEndian.Uint64(b[2:10]),
		Payload: b[headerLen : len(b)-4],
	}
	return f, total, nil
}

// ReadFrame reads exactly one frame from r. The allocation for the body is
// bounded by maxFrame (MaxFrame when zero). io.EOF is returned only on a
// clean boundary; a partial frame yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxFrame uint32) (Frame, error) {
	if maxFrame == 0 || maxFrame > MaxFrame {
		maxFrame = MaxFrame
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Frame{}, err // io.EOF on a clean frame boundary
	}
	body := binary.BigEndian.Uint32(lenBuf[:])
	if body < minBody {
		return Frame{}, ErrFrameTooSmall
	}
	if body > maxFrame {
		return Frame{}, ErrFrameTooLarge
	}
	b := make([]byte, body)
	if _, err := io.ReadFull(r, b); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	want := binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(b[:len(b)-4]) != want {
		return Frame{}, ErrBadCRC
	}
	return Frame{
		Op:      Op(b[0]),
		Status:  Status(b[1]),
		ID:      binary.BigEndian.Uint64(b[2:10]),
		Payload: b[headerLen : len(b)-4],
	}, nil
}

// WriteFrame encodes f and writes it to w in one call.
func WriteFrame(w io.Writer, f Frame) error {
	buf := AppendFrame(make([]byte, 0, EncodedLen(len(f.Payload))), f)
	_, err := w.Write(buf)
	return err
}
