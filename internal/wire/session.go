package wire

import (
	"encoding/binary"
	"fmt"
)

// Session (payload version 2) codecs. The v2 read requests prefix the v1
// payload with a (minSeq, epoch) token — "answer only once your applied
// replication position is ≥ minSeq, and only if your write lineage matches
// epoch" — and every v2 response prefixes its v1 payload with the node's
// (appliedSeq, epoch), which clients fold into their session token for
// read-your-writes and monotonic reads. A StatusNotReady (and a GET2
// StatusNotFound) response carries the bare applied pair.
//
// The epoch is the write-lineage identifier minted by the replication log
// (see package repl). An epoch of 0 in a request means "no lineage claim":
// the node applies the seq gate alone, which keeps pre-epoch clients and
// freshly seeded sessions working. A non-zero request epoch that differs
// from the node's is answered StatusNotReady — sequences from different
// lineages are not comparable, so clamping would silently break the
// session guarantee instead of surfacing the failover.
//
// The v2 write ops (PUT2, DEL2, BATCH2) reuse the v1 request payloads; their
// StatusOK responses carry the committed batch's last sequence plus the
// epoch it was minted under, which is the token a session gates subsequent
// follower reads on.

// --- v2 read requests: minSeq | epoch | <v1 request payload> ---

// AppendGetV2Req encodes a GET2 request: minSeq | epoch | klen | key.
func AppendGetV2Req(dst, key []byte, minSeq, epoch uint64) []byte {
	dst = binary.AppendUvarint(dst, minSeq)
	dst = binary.AppendUvarint(dst, epoch)
	return AppendKeyReq(dst, key)
}

// DecodeGetV2Req decodes a GET2 payload; key aliases p.
func DecodeGetV2Req(p []byte) (key []byte, minSeq, epoch uint64, err error) {
	minSeq, epoch, rest, err := getSeqEpoch(p)
	if err != nil {
		return nil, 0, 0, err
	}
	key, err = DecodeKeyReq(rest)
	if err != nil {
		return nil, 0, 0, err
	}
	return key, minSeq, epoch, nil
}

// AppendMGetV2Req encodes an MGET2 request: minSeq | epoch | count | keys.
func AppendMGetV2Req(dst []byte, keyList [][]byte, minSeq, epoch uint64) []byte {
	dst = binary.AppendUvarint(dst, minSeq)
	dst = binary.AppendUvarint(dst, epoch)
	return AppendMGetReq(dst, keyList)
}

// DecodeMGetV2Req decodes an MGET2 payload; key slices alias p.
func DecodeMGetV2Req(p []byte) (keyList [][]byte, minSeq, epoch uint64, err error) {
	minSeq, epoch, rest, err := getSeqEpoch(p)
	if err != nil {
		return nil, 0, 0, err
	}
	keyList, err = DecodeMGetReq(rest)
	if err != nil {
		return nil, 0, 0, err
	}
	return keyList, minSeq, epoch, nil
}

// AppendScanV2Req encodes a SCAN2 request: minSeq | epoch | klen | start | limit.
func AppendScanV2Req(dst, start []byte, limit uint32, minSeq, epoch uint64) []byte {
	dst = binary.AppendUvarint(dst, minSeq)
	dst = binary.AppendUvarint(dst, epoch)
	return AppendScanReq(dst, start, limit)
}

// DecodeScanV2Req decodes a SCAN2 payload; start aliases p.
func DecodeScanV2Req(p []byte) (start []byte, limit uint32, minSeq, epoch uint64, err error) {
	minSeq, epoch, rest, err := getSeqEpoch(p)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	start, limit, err = DecodeScanReq(rest)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	return start, limit, minSeq, epoch, nil
}

// getSeqEpoch consumes the leading (seq, epoch) pair every v2 payload opens
// with.
func getSeqEpoch(p []byte) (seq, epoch uint64, rest []byte, err error) {
	seq, rest, err = getUvarint(p)
	if err != nil {
		return 0, 0, nil, err
	}
	epoch, rest, err = getUvarint(rest)
	if err != nil {
		return 0, 0, nil, err
	}
	return seq, epoch, rest, nil
}

// --- v2 responses: appliedSeq | epoch | <v1 response payload> ---

// AppendAppliedSeq encodes a bare applied (seq, epoch) payload: the whole
// body of a v2 write response, a NOT_READY refusal, or a GET2 miss.
func AppendAppliedSeq(dst []byte, appliedSeq, epoch uint64) []byte {
	dst = binary.AppendUvarint(dst, appliedSeq)
	return binary.AppendUvarint(dst, epoch)
}

// DecodeAppliedSeq decodes a bare applied (seq, epoch) payload; trailing
// bytes are an error.
func DecodeAppliedSeq(p []byte) (appliedSeq, epoch uint64, err error) {
	appliedSeq, epoch, rest, err := getSeqEpoch(p)
	if err != nil {
		return 0, 0, err
	}
	if len(rest) != 0 {
		return 0, 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return appliedSeq, epoch, nil
}

// AppendGetV2Resp encodes a GET2 hit: appliedSeq | epoch | value (value runs
// to the end of the payload, exactly like the v1 GET response body).
func AppendGetV2Resp(dst []byte, appliedSeq, epoch uint64, value []byte) []byte {
	dst = binary.AppendUvarint(dst, appliedSeq)
	dst = binary.AppendUvarint(dst, epoch)
	return append(dst, value...)
}

// DecodeGetV2Resp decodes a GET2 hit; value aliases p and may be empty.
func DecodeGetV2Resp(p []byte) (appliedSeq, epoch uint64, value []byte, err error) {
	appliedSeq, epoch, rest, err := getSeqEpoch(p)
	if err != nil {
		return 0, 0, nil, err
	}
	return appliedSeq, epoch, rest, nil
}

// AppendMGetV2Resp encodes an MGET2 response: appliedSeq | epoch | v1 MGET
// response.
func AppendMGetV2Resp(dst []byte, appliedSeq, epoch uint64, vals [][]byte) []byte {
	dst = binary.AppendUvarint(dst, appliedSeq)
	dst = binary.AppendUvarint(dst, epoch)
	return AppendMGetResp(dst, vals)
}

// DecodeMGetV2Resp decodes an MGET2 response; value slices alias p.
func DecodeMGetV2Resp(p []byte) (appliedSeq, epoch uint64, vals [][]byte, err error) {
	appliedSeq, epoch, rest, err := getSeqEpoch(p)
	if err != nil {
		return 0, 0, nil, err
	}
	vals, err = DecodeMGetResp(rest)
	if err != nil {
		return 0, 0, nil, err
	}
	return appliedSeq, epoch, vals, nil
}

// AppendScanV2Resp encodes a SCAN2 response: appliedSeq | epoch | v1 SCAN
// response.
func AppendScanV2Resp(dst []byte, appliedSeq, epoch uint64, kvs []KV) []byte {
	dst = binary.AppendUvarint(dst, appliedSeq)
	dst = binary.AppendUvarint(dst, epoch)
	return AppendScanResp(dst, kvs)
}

// DecodeScanV2Resp decodes a SCAN2 response; pair slices alias p.
func DecodeScanV2Resp(p []byte) (appliedSeq, epoch uint64, kvs []KV, err error) {
	appliedSeq, epoch, rest, err := getSeqEpoch(p)
	if err != nil {
		return 0, 0, nil, err
	}
	kvs, err = DecodeScanResp(rest)
	if err != nil {
		return 0, 0, nil, err
	}
	return appliedSeq, epoch, kvs, nil
}
