package wire

import (
	"encoding/binary"
	"fmt"
)

// Session (payload version 2) codecs. The v2 read requests prefix the v1
// payload with a minSeq token — "answer only once your applied replication
// position is ≥ minSeq" — and every v2 response prefixes its v1 payload with
// the node's applied sequence, which clients fold into their session token
// for read-your-writes and monotonic reads. A StatusNotReady (and a GET2
// StatusNotFound) response carries the bare applied sequence.
//
// The v2 write ops (PUT2, DEL2, BATCH2) reuse the v1 request payloads; their
// StatusOK responses carry the committed batch's last sequence, which is the
// token a session gates subsequent follower reads on.

// --- v2 read requests: minSeq | <v1 request payload> ---

// AppendGetV2Req encodes a GET2 request: minSeq | klen | key.
func AppendGetV2Req(dst, key []byte, minSeq uint64) []byte {
	dst = binary.AppendUvarint(dst, minSeq)
	return AppendKeyReq(dst, key)
}

// DecodeGetV2Req decodes a GET2 payload; key aliases p.
func DecodeGetV2Req(p []byte) (key []byte, minSeq uint64, err error) {
	minSeq, rest, err := getUvarint(p)
	if err != nil {
		return nil, 0, err
	}
	key, err = DecodeKeyReq(rest)
	if err != nil {
		return nil, 0, err
	}
	return key, minSeq, nil
}

// AppendMGetV2Req encodes an MGET2 request: minSeq | count | keys.
func AppendMGetV2Req(dst []byte, keyList [][]byte, minSeq uint64) []byte {
	dst = binary.AppendUvarint(dst, minSeq)
	return AppendMGetReq(dst, keyList)
}

// DecodeMGetV2Req decodes an MGET2 payload; key slices alias p.
func DecodeMGetV2Req(p []byte) (keyList [][]byte, minSeq uint64, err error) {
	minSeq, rest, err := getUvarint(p)
	if err != nil {
		return nil, 0, err
	}
	keyList, err = DecodeMGetReq(rest)
	if err != nil {
		return nil, 0, err
	}
	return keyList, minSeq, nil
}

// AppendScanV2Req encodes a SCAN2 request: minSeq | klen | start | limit.
func AppendScanV2Req(dst, start []byte, limit uint32, minSeq uint64) []byte {
	dst = binary.AppendUvarint(dst, minSeq)
	return AppendScanReq(dst, start, limit)
}

// DecodeScanV2Req decodes a SCAN2 payload; start aliases p.
func DecodeScanV2Req(p []byte) (start []byte, limit uint32, minSeq uint64, err error) {
	minSeq, rest, err := getUvarint(p)
	if err != nil {
		return nil, 0, 0, err
	}
	start, limit, err = DecodeScanReq(rest)
	if err != nil {
		return nil, 0, 0, err
	}
	return start, limit, minSeq, nil
}

// --- v2 responses: appliedSeq | <v1 response payload> ---

// AppendAppliedSeq encodes a bare applied-sequence payload: the whole body
// of a v2 write response, a NOT_READY refusal, or a GET2 miss.
func AppendAppliedSeq(dst []byte, appliedSeq uint64) []byte {
	return binary.AppendUvarint(dst, appliedSeq)
}

// DecodeAppliedSeq decodes a bare applied-sequence payload; trailing bytes
// are an error.
func DecodeAppliedSeq(p []byte) (appliedSeq uint64, err error) {
	appliedSeq, rest, err := getUvarint(p)
	if err != nil {
		return 0, err
	}
	if len(rest) != 0 {
		return 0, fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(rest))
	}
	return appliedSeq, nil
}

// AppendGetV2Resp encodes a GET2 hit: appliedSeq | value (value runs to the
// end of the payload, exactly like the v1 GET response body).
func AppendGetV2Resp(dst []byte, appliedSeq uint64, value []byte) []byte {
	dst = binary.AppendUvarint(dst, appliedSeq)
	return append(dst, value...)
}

// DecodeGetV2Resp decodes a GET2 hit; value aliases p and may be empty.
func DecodeGetV2Resp(p []byte) (appliedSeq uint64, value []byte, err error) {
	appliedSeq, rest, err := getUvarint(p)
	if err != nil {
		return 0, nil, err
	}
	return appliedSeq, rest, nil
}

// AppendMGetV2Resp encodes an MGET2 response: appliedSeq | v1 MGET response.
func AppendMGetV2Resp(dst []byte, appliedSeq uint64, vals [][]byte) []byte {
	dst = binary.AppendUvarint(dst, appliedSeq)
	return AppendMGetResp(dst, vals)
}

// DecodeMGetV2Resp decodes an MGET2 response; value slices alias p.
func DecodeMGetV2Resp(p []byte) (appliedSeq uint64, vals [][]byte, err error) {
	appliedSeq, rest, err := getUvarint(p)
	if err != nil {
		return 0, nil, err
	}
	vals, err = DecodeMGetResp(rest)
	if err != nil {
		return 0, nil, err
	}
	return appliedSeq, vals, nil
}

// AppendScanV2Resp encodes a SCAN2 response: appliedSeq | v1 SCAN response.
func AppendScanV2Resp(dst []byte, appliedSeq uint64, kvs []KV) []byte {
	dst = binary.AppendUvarint(dst, appliedSeq)
	return AppendScanResp(dst, kvs)
}

// DecodeScanV2Resp decodes a SCAN2 response; pair slices alias p.
func DecodeScanV2Resp(p []byte) (appliedSeq uint64, kvs []KV, err error) {
	appliedSeq, rest, err := getUvarint(p)
	if err != nil {
		return 0, nil, err
	}
	kvs, err = DecodeScanResp(rest)
	if err != nil {
		return 0, nil, err
	}
	return appliedSeq, kvs, nil
}
