package wire

import (
	"bytes"
	"testing"
)

func TestReplHelloRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 1 << 40} {
		for _, flags := range []uint8{0, ReplFlagAntiEntropy} {
			p := AppendReplHelloReq(nil, seq*3+1, seq, flags)
			if flags == 0 && p[0] != ReplProtoVersion {
				t.Fatalf("flags-free hello not version 2: %d", p[0])
			}
			if flags != 0 && p[0] != ReplProtoVersion3 {
				t.Fatalf("flagged hello not version 3: %d", p[0])
			}
			epoch, got, gotFlags, err := DecodeReplHelloReq(p)
			if err != nil || got != seq || epoch != seq*3+1 || gotFlags != flags {
				t.Fatalf("hello req %d/%d: got epoch %d seq %d flags %d err %v", seq, flags, epoch, got, gotFlags, err)
			}
		}
	}
	if _, _, _, err := DecodeReplHelloReq(nil); err == nil {
		t.Fatal("empty hello accepted")
	}
	if _, _, _, err := DecodeReplHelloReq([]byte{99, 0, 0}); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, _, _, err := DecodeReplHelloReq(append(AppendReplHelloReq(nil, 3, 7, 0), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, _, _, err := DecodeReplHelloReq([]byte{ReplProtoVersion, 5}); err == nil {
		t.Fatal("truncated hello accepted")
	}
	if _, _, _, err := DecodeReplHelloReq([]byte{ReplProtoVersion3}); err == nil {
		t.Fatal("v3 hello without flags byte accepted")
	}

	for _, mode := range []uint8{ReplModeTail, ReplModeSnapshot, ReplModeAntiEntropy} {
		p := AppendReplHelloResp(nil, mode, 9, 42)
		m, e, s, err := DecodeReplHelloResp(p)
		if err != nil || m != mode || e != 9 || s != 42 {
			t.Fatalf("hello resp mode %d: got %d/%d/%d err %v", mode, m, e, s, err)
		}
	}
	if _, _, _, err := DecodeReplHelloResp([]byte{9, 1, 1}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, _, _, err := DecodeReplHelloResp([]byte{ReplModeTail, 5}); err == nil {
		t.Fatal("truncated hello resp accepted")
	}
}

func TestReplFrameRoundTrip(t *testing.T) {
	ops := []BatchOp{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Delete: true},
		{Key: []byte("c"), Value: nil}, // empty value put
	}
	p := AppendReplFrame(nil, 99, ops)
	base, got, err := DecodeReplFrame(p)
	if err != nil {
		t.Fatal(err)
	}
	if base != 99 || len(got) != 3 {
		t.Fatalf("base=%d n=%d", base, len(got))
	}
	for i := range ops {
		if !bytes.Equal(got[i].Key, ops[i].Key) || !bytes.Equal(got[i].Value, ops[i].Value) || got[i].Delete != ops[i].Delete {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, got[i], ops[i])
		}
	}
	if _, _, err := DecodeReplFrame(AppendReplFrame(nil, 0, ops)); err == nil {
		t.Fatal("base 0 accepted")
	}
	if _, _, err := DecodeReplFrame(AppendReplFrame(nil, 5, nil)); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestReplAckRoundTrip(t *testing.T) {
	p := AppendReplAck(nil, 1234567)
	got, err := DecodeReplAck(p)
	if err != nil || got != 1234567 {
		t.Fatalf("ack: got %d err %v", got, err)
	}
	if _, err := DecodeReplAck(nil); err == nil {
		t.Fatal("empty ack accepted")
	}
	if _, err := DecodeReplAck(append(p, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestReplSnapshotRoundTrip(t *testing.T) {
	kvs := []KV{
		{Key: []byte("k1"), Value: []byte("v1")},
		{Key: []byte("k2"), Value: []byte{}},
	}
	p := AppendReplSnapshot(nil, 77, kvs, false)
	seq, got, done, err := DecodeReplSnapshot(p)
	if err != nil || done || seq != 77 || len(got) != 2 {
		t.Fatalf("chunk: seq=%d n=%d done=%v err=%v", seq, len(got), done, err)
	}
	for i := range kvs {
		if !bytes.Equal(got[i].Key, kvs[i].Key) || !bytes.Equal(got[i].Value, kvs[i].Value) {
			t.Fatalf("pair %d mismatch", i)
		}
	}
	// Final chunk may be empty.
	seq, got, done, err = DecodeReplSnapshot(AppendReplSnapshot(nil, 77, nil, true))
	if err != nil || !done || seq != 77 || len(got) != 0 {
		t.Fatalf("final: seq=%d n=%d done=%v err=%v", seq, len(got), done, err)
	}
	// A non-final empty chunk is malformed.
	if _, _, _, err := DecodeReplSnapshot(AppendReplSnapshot(nil, 77, nil, false)); err == nil {
		t.Fatal("empty non-final chunk accepted")
	}
	if _, _, _, err := DecodeReplSnapshot([]byte{2, 0, 0}); err == nil {
		t.Fatal("bad done byte accepted")
	}
}

func TestReplOpsValidAndNamed(t *testing.T) {
	for _, op := range []Op{OpReplHello, OpReplFrame, OpReplAck, OpReplSnapshot} {
		if !op.Valid() {
			t.Fatalf("%s not valid", op)
		}
		if op.String()[:5] != "REPL_" {
			t.Fatalf("unexpected name %q", op.String())
		}
	}
	for _, op := range []Op{OpTreeRoot, OpTreeDiff} {
		if !op.Valid() {
			t.Fatalf("%s not valid", op)
		}
		if op.String()[:5] != "TREE_" {
			t.Fatalf("unexpected name %q", op.String())
		}
	}
}

func TestTreeRootRoundTrip(t *testing.T) {
	var root [TreeHashLen]byte
	for i := range root {
		root[i] = byte(i * 7)
	}
	for _, bits := range []int{1, 10, treeMaxBits} {
		p := AppendTreeRoot(nil, bits, root)
		gotBits, gotRoot, err := DecodeTreeRoot(p)
		if err != nil || gotBits != bits || gotRoot != root {
			t.Fatalf("tree root bits=%d: got %d err %v", bits, gotBits, err)
		}
	}
	if _, _, err := DecodeTreeRoot(AppendTreeRoot(nil, 0, root)); err == nil {
		t.Fatal("bits 0 accepted")
	}
	if _, _, err := DecodeTreeRoot(AppendTreeRoot(nil, treeMaxBits+1, root)); err == nil {
		t.Fatal("oversized bits accepted")
	}
	if _, _, err := DecodeTreeRoot(AppendTreeRoot(nil, 4, root)[:10]); err == nil {
		t.Fatal("truncated root accepted")
	}
	if _, _, err := DecodeTreeRoot(append(AppendTreeRoot(nil, 4, root), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTreeDiffRoundTrip(t *testing.T) {
	ids := []uint32{1, 2, 3, 1 << 10, 2<<treeMaxBits - 1}
	hashes := make([][TreeHashLen]byte, len(ids))
	for i := range hashes {
		hashes[i][0] = byte(i + 1)
	}

	// Hash query (flags 0, no hashes).
	flags, gotIDs, gotHashes, err := DecodeTreeDiff(AppendTreeDiff(nil, 0, ids, nil))
	if err != nil || flags != 0 || len(gotHashes) != 0 {
		t.Fatalf("query: flags=%d hashes=%d err=%v", flags, len(gotHashes), err)
	}
	for i := range ids {
		if gotIDs[i] != ids[i] {
			t.Fatalf("query id %d: got %d want %d", i, gotIDs[i], ids[i])
		}
	}

	// Hash response.
	flags, gotIDs, gotHashes, err = DecodeTreeDiff(AppendTreeDiff(nil, TreeDiffHashes, ids, hashes))
	if err != nil || flags != TreeDiffHashes || len(gotIDs) != len(ids) || len(gotHashes) != len(ids) {
		t.Fatalf("response: flags=%d ids=%d hashes=%d err=%v", flags, len(gotIDs), len(gotHashes), err)
	}
	for i := range hashes {
		if gotHashes[i] != hashes[i] {
			t.Fatalf("hash %d mismatch", i)
		}
	}

	// Empty fetch is the legal "nothing diverged" terminal.
	flags, gotIDs, _, err = DecodeTreeDiff(AppendTreeDiff(nil, TreeDiffFetch, nil, nil))
	if err != nil || flags != TreeDiffFetch || len(gotIDs) != 0 {
		t.Fatalf("empty fetch: flags=%d ids=%d err=%v", flags, len(gotIDs), err)
	}

	if _, _, _, err := DecodeTreeDiff(nil); err == nil {
		t.Fatal("empty diff accepted")
	}
	if _, _, _, err := DecodeTreeDiff(AppendTreeDiff(nil, 1<<7, ids, nil)); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if _, _, _, err := DecodeTreeDiff(AppendTreeDiff(nil, 0, []uint32{0}, nil)); err == nil {
		t.Fatal("node id 0 accepted")
	}
	if _, _, _, err := DecodeTreeDiff(AppendTreeDiff(nil, 0, []uint32{2 << treeMaxBits}, nil)); err == nil {
		t.Fatal("out-of-range node id accepted")
	}
	short := AppendTreeDiff(nil, TreeDiffHashes, ids, hashes)
	if _, _, _, err := DecodeTreeDiff(short[:len(short)-1]); err == nil {
		t.Fatal("truncated hashes accepted")
	}
	if _, _, _, err := DecodeTreeDiff(append(AppendTreeDiff(nil, 0, ids, nil), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
