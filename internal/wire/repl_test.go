package wire

import (
	"bytes"
	"testing"
)

func TestReplHelloRoundTrip(t *testing.T) {
	for _, seq := range []uint64{0, 1, 1 << 40} {
		p := AppendReplHelloReq(nil, seq*3+1, seq)
		epoch, got, err := DecodeReplHelloReq(p)
		if err != nil || got != seq || epoch != seq*3+1 {
			t.Fatalf("hello req %d: got epoch %d seq %d err %v", seq, epoch, got, err)
		}
	}
	if _, _, err := DecodeReplHelloReq(nil); err == nil {
		t.Fatal("empty hello accepted")
	}
	if _, _, err := DecodeReplHelloReq([]byte{99, 0, 0}); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, _, err := DecodeReplHelloReq(append(AppendReplHelloReq(nil, 3, 7), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, _, err := DecodeReplHelloReq([]byte{ReplProtoVersion, 5}); err == nil {
		t.Fatal("truncated hello accepted")
	}

	for _, mode := range []uint8{ReplModeTail, ReplModeSnapshot} {
		p := AppendReplHelloResp(nil, mode, 9, 42)
		m, e, s, err := DecodeReplHelloResp(p)
		if err != nil || m != mode || e != 9 || s != 42 {
			t.Fatalf("hello resp mode %d: got %d/%d/%d err %v", mode, m, e, s, err)
		}
	}
	if _, _, _, err := DecodeReplHelloResp([]byte{9, 1, 1}); err == nil {
		t.Fatal("bad mode accepted")
	}
	if _, _, _, err := DecodeReplHelloResp([]byte{ReplModeTail, 5}); err == nil {
		t.Fatal("truncated hello resp accepted")
	}
}

func TestReplFrameRoundTrip(t *testing.T) {
	ops := []BatchOp{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Delete: true},
		{Key: []byte("c"), Value: nil}, // empty value put
	}
	p := AppendReplFrame(nil, 99, ops)
	base, got, err := DecodeReplFrame(p)
	if err != nil {
		t.Fatal(err)
	}
	if base != 99 || len(got) != 3 {
		t.Fatalf("base=%d n=%d", base, len(got))
	}
	for i := range ops {
		if !bytes.Equal(got[i].Key, ops[i].Key) || !bytes.Equal(got[i].Value, ops[i].Value) || got[i].Delete != ops[i].Delete {
			t.Fatalf("op %d mismatch: %+v vs %+v", i, got[i], ops[i])
		}
	}
	if _, _, err := DecodeReplFrame(AppendReplFrame(nil, 0, ops)); err == nil {
		t.Fatal("base 0 accepted")
	}
	if _, _, err := DecodeReplFrame(AppendReplFrame(nil, 5, nil)); err == nil {
		t.Fatal("empty frame accepted")
	}
}

func TestReplAckRoundTrip(t *testing.T) {
	p := AppendReplAck(nil, 1234567)
	got, err := DecodeReplAck(p)
	if err != nil || got != 1234567 {
		t.Fatalf("ack: got %d err %v", got, err)
	}
	if _, err := DecodeReplAck(nil); err == nil {
		t.Fatal("empty ack accepted")
	}
	if _, err := DecodeReplAck(append(p, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestReplSnapshotRoundTrip(t *testing.T) {
	kvs := []KV{
		{Key: []byte("k1"), Value: []byte("v1")},
		{Key: []byte("k2"), Value: []byte{}},
	}
	p := AppendReplSnapshot(nil, 77, kvs, false)
	seq, got, done, err := DecodeReplSnapshot(p)
	if err != nil || done || seq != 77 || len(got) != 2 {
		t.Fatalf("chunk: seq=%d n=%d done=%v err=%v", seq, len(got), done, err)
	}
	for i := range kvs {
		if !bytes.Equal(got[i].Key, kvs[i].Key) || !bytes.Equal(got[i].Value, kvs[i].Value) {
			t.Fatalf("pair %d mismatch", i)
		}
	}
	// Final chunk may be empty.
	seq, got, done, err = DecodeReplSnapshot(AppendReplSnapshot(nil, 77, nil, true))
	if err != nil || !done || seq != 77 || len(got) != 0 {
		t.Fatalf("final: seq=%d n=%d done=%v err=%v", seq, len(got), done, err)
	}
	// A non-final empty chunk is malformed.
	if _, _, _, err := DecodeReplSnapshot(AppendReplSnapshot(nil, 77, nil, false)); err == nil {
		t.Fatal("empty non-final chunk accepted")
	}
	if _, _, _, err := DecodeReplSnapshot([]byte{2, 0, 0}); err == nil {
		t.Fatal("bad done byte accepted")
	}
}

func TestReplOpsValidAndNamed(t *testing.T) {
	for _, op := range []Op{OpReplHello, OpReplFrame, OpReplAck, OpReplSnapshot} {
		if !op.Valid() {
			t.Fatalf("%s not valid", op)
		}
		if op.String()[:5] != "REPL_" {
			t.Fatalf("unexpected name %q", op.String())
		}
	}
}
