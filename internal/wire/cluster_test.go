package wire

import (
	"errors"
	"reflect"
	"testing"
)

func TestShardMapRoundTrip(t *testing.T) {
	m := &ShardMap{
		Version: 7,
		Groups:  []string{"10.0.0.1:4100", "10.0.0.2:4100", "10.0.0.3:4100"},
		Slots:   []uint32{0, 1, 2, 1, 0, 2, 2, 1},
	}
	if err := ValidateShardMap(m); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeShardMap(AppendShardMap(nil, m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
}

func TestShardMapRejectsMalformed(t *testing.T) {
	base := &ShardMap{Version: 1, Groups: []string{"a:1"}, Slots: []uint32{0}}
	cases := []struct {
		name string
		mut  func(m *ShardMap)
	}{
		{"version 0", func(m *ShardMap) { m.Version = 0 }},
		{"no groups", func(m *ShardMap) { m.Groups = nil }},
		{"no slots", func(m *ShardMap) { m.Slots = nil }},
		{"owner out of range", func(m *ShardMap) { m.Slots = []uint32{1} }},
		{"empty addr", func(m *ShardMap) { m.Groups = []string{""} }},
	}
	for _, tc := range cases {
		m := &ShardMap{Version: base.Version, Groups: append([]string(nil), base.Groups...), Slots: append([]uint32(nil), base.Slots...)}
		tc.mut(m)
		if err := ValidateShardMap(m); err == nil {
			t.Errorf("%s: validated", tc.name)
		}
		if _, err := DecodeShardMap(AppendShardMap(nil, m)); err == nil {
			t.Errorf("%s: decoded", tc.name)
		}
	}
	if _, err := DecodeShardMap(nil); !errors.Is(err, ErrBadPayload) {
		t.Error("empty map decoded")
	}
	if _, err := DecodeShardMap(append(AppendShardMap(nil, base), 0)); !errors.Is(err, ErrBadPayload) {
		t.Error("trailing bytes decoded")
	}
	// Declared group count far beyond the payload must fail before allocating.
	if _, err := DecodeShardMap([]byte{1, 0xff, 0xff, 0x3f}); err == nil {
		t.Error("absurd group count decoded")
	}
}

func TestHandoffCodecs(t *testing.T) {
	slots := []uint32{3, 1, 4, 1, 5}
	got, err := DecodeHandoffReq(AppendHandoffReq(nil, slots))
	if err != nil || !reflect.DeepEqual(got, slots) {
		t.Fatalf("handoff req: %v %v", got, err)
	}
	if _, err := DecodeHandoffReq(AppendHandoffReq(nil, nil)); err == nil {
		t.Error("empty handoff decoded")
	}
	if _, err := DecodeHandoffReq(append(AppendHandoffReq(nil, slots), 9)); err == nil {
		t.Error("trailing bytes decoded")
	}

	g, gs, err := DecodeHandoffHelloReq(AppendHandoffHelloReq(nil, 2, slots))
	if err != nil || g != 2 || !reflect.DeepEqual(gs, slots) {
		t.Fatalf("handoff hello req: %d %v %v", g, gs, err)
	}
	mv, ss, err := DecodeHandoffHelloResp(AppendHandoffHelloResp(nil, 9, 1234))
	if err != nil || mv != 9 || ss != 1234 {
		t.Fatalf("handoff hello resp: %d %d %v", mv, ss, err)
	}
	if _, _, err := DecodeHandoffHelloResp([]byte{0x80}); err == nil {
		t.Error("truncated hello resp decoded")
	}
}

func TestReplFrame2RoundTrip(t *testing.T) {
	ops := []BatchOp{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Delete: true},
		{Key: []byte("c"), Merge: true, Delta: -5},
	}
	base, last, got, err := DecodeReplFrame2(AppendReplFrame2(nil, 10, 14, ops))
	if err != nil || base != 10 || last != 14 || len(got) != 3 {
		t.Fatalf("frame2: %d %d %v %v", base, last, got, err)
	}
	if !got[2].Merge || got[2].Delta != -5 {
		t.Fatalf("frame2 merge op lost: %+v", got[2])
	}

	// Zero surviving ops is legal — the whole point of the explicit window.
	base, last, got, err = DecodeReplFrame2(AppendReplFrame2(nil, 15, 15, nil))
	if err != nil || base != 15 || last != 15 || len(got) != 0 {
		t.Fatalf("empty frame2: %d %d %v %v", base, last, got, err)
	}

	// Base 0 and inverted windows are rejected.
	if _, _, _, err := DecodeReplFrame2(AppendReplFrame2(nil, 0, 3, nil)); err == nil {
		t.Error("base-0 frame2 decoded")
	}
	if _, _, _, err := DecodeReplFrame2(AppendReplFrame2(nil, 7, 6, nil)); err == nil {
		t.Error("inverted frame2 window decoded")
	}
}

func TestClusterOpsValidAndNamed(t *testing.T) {
	for _, op := range []Op{OpShardMap, OpHandoff, OpHandoffHello, OpHandoffFlip, OpReplFrame2} {
		if !op.Valid() {
			t.Fatalf("op %d invalid", op)
		}
		if s := op.String(); len(s) == 0 || s[0] == 'O' {
			t.Fatalf("op %d unnamed: %q", op, s)
		}
	}
	if StatusWrongShard.String() != "wrong shard" {
		t.Fatalf("StatusWrongShard = %q", StatusWrongShard.String())
	}
}
