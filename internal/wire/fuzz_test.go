package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes through the frame decoder and, when
// a frame survives the CRC, through every payload decoder. The contract:
// malformed input returns an error — no panics, and no allocation larger
// than the bounds-checked frame length (enforced here by capping the fuzz
// decoder at 1 MiB so an over-allocation would OOM the fuzz engine's
// malloc limit rather than pass silently).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 14})
	f.Add(AppendFrame(nil, Frame{Op: OpPing, ID: 1}))
	f.Add(AppendFrame(nil, Frame{Op: OpPut, ID: 2, Payload: AppendPutReq(nil, []byte("k"), []byte("v"))}))
	f.Add(AppendFrame(nil, Frame{Op: OpBatch, ID: 3, Payload: AppendBatchReq(nil, []BatchOp{
		{Key: []byte("a"), Value: []byte("1")}, {Key: []byte("b"), Delete: true},
	})}))
	f.Add(AppendFrame(nil, Frame{Op: OpMGet, ID: 4, Payload: AppendMGetReq(nil, [][]byte{[]byte("x")})}))
	f.Add(AppendFrame(nil, Frame{Op: OpScan, ID: 5, Payload: AppendScanReq(nil, []byte("s"), 10)}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplHello, ID: 7, Payload: AppendReplHelloReq(nil, 3, 12, 0)}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplHello, ID: 7, Payload: AppendReplHelloReq(nil, 3, 12, ReplFlagAntiEntropy)}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplHello, Status: StatusOK, ID: 7, Payload: AppendReplHelloResp(nil, ReplModeSnapshot, 3, 12)}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplFrame, ID: 8, Payload: AppendReplFrame(nil, 9, []BatchOp{
		{Key: []byte("r"), Value: []byte("1")}, {Key: []byte("s"), Delete: true},
	})}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplAck, ID: 9, Payload: AppendReplAck(nil, 33)}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplSnapshot, ID: 10, Payload: AppendReplSnapshot(nil, 5, []KV{
		{Key: []byte("k"), Value: []byte("v")},
	}, true)}))
	// Session (v2) payloads: read requests with minSeq tokens, responses
	// with appliedSeq prefixes, and the bare-seq bodies shared by v2 write
	// responses and NOT_READY refusals.
	f.Add(AppendFrame(nil, Frame{Op: OpGetV2, ID: 11, Payload: AppendGetV2Req(nil, []byte("k"), 99, 17)}))
	f.Add(AppendFrame(nil, Frame{Op: OpGetV2, Status: StatusOK, ID: 11, Payload: AppendGetV2Resp(nil, 104, 17, []byte("v"))}))
	f.Add(AppendFrame(nil, Frame{Op: OpGetV2, Status: StatusNotReady, ID: 11, Payload: AppendAppliedSeq(nil, 52, 17)}))
	f.Add(AppendFrame(nil, Frame{Op: OpMGetV2, ID: 12, Payload: AppendMGetV2Req(nil, [][]byte{[]byte("a"), []byte("b")}, 7, 0)}))
	f.Add(AppendFrame(nil, Frame{Op: OpMGetV2, Status: StatusOK, ID: 12, Payload: AppendMGetV2Resp(nil, 8, 17, [][]byte{[]byte("1"), nil})}))
	f.Add(AppendFrame(nil, Frame{Op: OpScanV2, ID: 13, Payload: AppendScanV2Req(nil, []byte("s"), 10, 3, 17)}))
	f.Add(AppendFrame(nil, Frame{Op: OpScanV2, Status: StatusOK, ID: 13, Payload: AppendScanV2Resp(nil, 20, 17, []KV{{Key: []byte("k"), Value: []byte("v")}})}))
	f.Add(AppendFrame(nil, Frame{Op: OpPutV2, ID: 14, Payload: AppendPutReq(nil, []byte("k"), []byte("v"))}))
	f.Add(AppendFrame(nil, Frame{Op: OpPutV2, Status: StatusOK, ID: 14, Payload: AppendAppliedSeq(nil, 105, 17)}))
	f.Add(AppendFrame(nil, Frame{Op: OpBatchV2, ID: 15, Payload: AppendBatchReq(nil, []BatchOp{{Key: []byte("a"), Value: []byte("1")}})}))
	// A truncated minSeq varint (continuation bit set, nothing follows).
	f.Add(AppendFrame(nil, Frame{Op: OpGetV2, ID: 16, Payload: []byte{0x80}}))
	// Merge frames: INCR/INCR2 requests and responses, merge ops in
	// batches and repl frames, plus malformed deltas.
	f.Add(AppendFrame(nil, Frame{Op: OpIncr, ID: 17, Payload: AppendIncrReq(nil, []byte("c"), -42)}))
	f.Add(AppendFrame(nil, Frame{Op: OpIncr, Status: StatusOK, ID: 17, Payload: AppendIncrResp(nil, 1<<62)}))
	f.Add(AppendFrame(nil, Frame{Op: OpIncrV2, ID: 18, Payload: AppendIncrReq(nil, []byte("c"), 9223372036854775807)}))
	f.Add(AppendFrame(nil, Frame{Op: OpIncrV2, Status: StatusOK, ID: 18, Payload: AppendIncrV2Resp(nil, 7, 17, -9223372036854775808)}))
	f.Add(AppendFrame(nil, Frame{Op: OpBatch, ID: 19, Payload: AppendBatchReq(nil, []BatchOp{
		{Key: []byte("c"), Merge: true, Delta: 5}, {Key: []byte("d"), Value: []byte("v")},
	})}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplFrame, ID: 20, Payload: AppendReplFrame(nil, 11, []BatchOp{
		{Key: []byte("c"), Merge: true, Delta: -3},
	})}))
	// An INCR whose delta varint is truncated mid-continuation.
	f.Add(AppendFrame(nil, Frame{Op: OpIncr, ID: 21, Payload: []byte{1, 'c', 0xff, 0xff}}))
	// An 11-byte varint delta (overflows int64) inside a batch merge op.
	f.Add(AppendFrame(nil, Frame{Op: OpBatch, ID: 22, Payload: []byte{
		1, 2, 1, 'c', 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
	}}))
	// Cluster frames: shard maps (standalone and as WRONG_SHARD payloads),
	// handoff admin/stream messages, and filtered REPL_FRAME2 windows —
	// including the zero-op window only FRAME2 allows.
	sm := &ShardMap{Version: 3, Groups: []string{"127.0.0.1:4100", "127.0.0.1:4200"}, Slots: []uint32{0, 1, 0, 1}}
	f.Add(AppendFrame(nil, Frame{Op: OpShardMap, ID: 23}))
	f.Add(AppendFrame(nil, Frame{Op: OpShardMap, Status: StatusOK, ID: 23, Payload: AppendShardMap(nil, sm)}))
	f.Add(AppendFrame(nil, Frame{Op: OpGet, Status: StatusWrongShard, ID: 24, Payload: AppendShardMap(nil, sm)}))
	f.Add(AppendFrame(nil, Frame{Op: OpHandoff, ID: 25, Payload: AppendHandoffReq(nil, []uint32{1, 3})}))
	f.Add(AppendFrame(nil, Frame{Op: OpHandoff, Status: StatusOK, ID: 25, Payload: AppendShardMap(nil, sm)}))
	f.Add(AppendFrame(nil, Frame{Op: OpHandoffHello, ID: 26, Payload: AppendHandoffHelloReq(nil, 1, []uint32{1, 3})}))
	f.Add(AppendFrame(nil, Frame{Op: OpHandoffHello, Status: StatusOK, ID: 26, Payload: AppendHandoffHelloResp(nil, 3, 1000)}))
	f.Add(AppendFrame(nil, Frame{Op: OpHandoffFlip, ID: 27}))
	f.Add(AppendFrame(nil, Frame{Op: OpHandoffFlip, Status: StatusOK, ID: 27, Payload: AppendShardMap(nil, sm)}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplFrame2, ID: 28, Payload: AppendReplFrame2(nil, 9, 12, []BatchOp{
		{Key: []byte("r"), Value: []byte("1")}, {Key: []byte("s"), Delete: true},
	})}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplFrame2, ID: 29, Payload: AppendReplFrame2(nil, 13, 13, nil)}))
	// A shard map whose slot table names a group beyond the group table.
	f.Add(AppendFrame(nil, Frame{Op: OpShardMap, Status: StatusOK, ID: 30, Payload: []byte{1, 1, 1, 'a', 1, 5}}))
	// Anti-entropy frames: the TREE_ROOT opener, a hash query, a hash
	// response, the divergent-leaf fetch (and the legal empty fetch), plus a
	// v3 hello response choosing anti-entropy mode.
	var treeRoot [TreeHashLen]byte
	treeRoot[0], treeRoot[31] = 0xaa, 0x55
	treeIDs := []uint32{2, 3, 1 << 10, 1<<11 - 1}
	treeHashes := make([][TreeHashLen]byte, len(treeIDs))
	for i := range treeHashes {
		treeHashes[i][0] = byte(i + 1)
	}
	f.Add(AppendFrame(nil, Frame{Op: OpTreeRoot, Status: StatusOK, ID: 31, Payload: AppendTreeRoot(nil, 10, treeRoot)}))
	f.Add(AppendFrame(nil, Frame{Op: OpTreeDiff, ID: 32, Payload: AppendTreeDiff(nil, 0, treeIDs, nil)}))
	f.Add(AppendFrame(nil, Frame{Op: OpTreeDiff, Status: StatusOK, ID: 32, Payload: AppendTreeDiff(nil, TreeDiffHashes, treeIDs, treeHashes)}))
	f.Add(AppendFrame(nil, Frame{Op: OpTreeDiff, ID: 33, Payload: AppendTreeDiff(nil, TreeDiffFetch, []uint32{1 << 10, 1<<10 + 7}, nil)}))
	f.Add(AppendFrame(nil, Frame{Op: OpTreeDiff, ID: 34, Payload: AppendTreeDiff(nil, TreeDiffFetch, nil, nil)}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplHello, Status: StatusOK, ID: 35, Payload: AppendReplHelloResp(nil, ReplModeAntiEntropy, 3, 12)}))
	// A TREE_DIFF whose hash block is one byte short of count × 32.
	shortDiff := AppendTreeDiff(nil, TreeDiffHashes, treeIDs, treeHashes)
	f.Add(AppendFrame(nil, Frame{Op: OpTreeDiff, ID: 36, Payload: shortDiff[:len(shortDiff)-1]}))
	// A valid frame with a corrupted interior byte.
	corrupt := AppendFrame(nil, Frame{Op: OpGet, ID: 6, Payload: AppendKeyReq(nil, []byte("kk"))})
	corrupt[len(corrupt)/2] ^= 0x5a
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 20
		fr, n, err := DecodeFrame(data, maxFrame)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n < 4+minBody || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// A decoded frame must re-encode to the exact bytes consumed.
		re := AppendFrame(nil, fr)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
		// Payload decoders must not panic either; aliasing is fine here.
		switch fr.Op {
		case OpPut:
			DecodePutReq(fr.Payload)
		case OpGet, OpDel:
			DecodeKeyReq(fr.Payload)
		case OpBatch:
			DecodeBatchReq(fr.Payload)
		case OpMGet:
			DecodeMGetReq(fr.Payload)
			DecodeMGetResp(fr.Payload)
		case OpScan:
			DecodeScanReq(fr.Payload)
			DecodeScanResp(fr.Payload)
		case OpReplHello:
			DecodeReplHelloReq(fr.Payload)
			DecodeReplHelloResp(fr.Payload)
		case OpReplFrame:
			DecodeReplFrame(fr.Payload)
		case OpReplAck:
			DecodeReplAck(fr.Payload)
		case OpReplSnapshot:
			DecodeReplSnapshot(fr.Payload)
		case OpGetV2:
			DecodeGetV2Req(fr.Payload)
			DecodeGetV2Resp(fr.Payload)
			DecodeAppliedSeq(fr.Payload)
		case OpMGetV2:
			DecodeMGetV2Req(fr.Payload)
			DecodeMGetV2Resp(fr.Payload)
		case OpScanV2:
			DecodeScanV2Req(fr.Payload)
			DecodeScanV2Resp(fr.Payload)
		case OpPutV2:
			DecodePutReq(fr.Payload)
			DecodeAppliedSeq(fr.Payload)
		case OpDelV2:
			DecodeKeyReq(fr.Payload)
			DecodeAppliedSeq(fr.Payload)
		case OpBatchV2:
			DecodeBatchReq(fr.Payload)
			DecodeAppliedSeq(fr.Payload)
		case OpIncr:
			DecodeIncrReq(fr.Payload)
			DecodeIncrResp(fr.Payload)
		case OpIncrV2:
			DecodeIncrReq(fr.Payload)
			DecodeIncrV2Resp(fr.Payload)
		case OpShardMap:
			DecodeShardMap(fr.Payload)
		case OpHandoff:
			DecodeHandoffReq(fr.Payload)
			DecodeShardMap(fr.Payload)
		case OpHandoffHello:
			DecodeHandoffHelloReq(fr.Payload)
			DecodeHandoffHelloResp(fr.Payload)
		case OpHandoffFlip:
			DecodeShardMap(fr.Payload)
		case OpReplFrame2:
			DecodeReplFrame2(fr.Payload)
		case OpTreeRoot:
			DecodeTreeRoot(fr.Payload)
		case OpTreeDiff:
			DecodeTreeDiff(fr.Payload)
		}
		if fr.Status == StatusWrongShard {
			DecodeShardMap(fr.Payload)
		}
		// The stream reader must agree with the buffer decoder.
		sf, serr := ReadFrame(bytes.NewReader(data[:n]), maxFrame)
		if serr != nil {
			t.Fatalf("ReadFrame disagreed: %v", serr)
		}
		if sf.Op != fr.Op || sf.Status != fr.Status || sf.ID != fr.ID || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatalf("ReadFrame mismatch: %+v vs %+v", sf, fr)
		}
	})
}
