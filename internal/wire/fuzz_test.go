package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes through the frame decoder and, when
// a frame survives the CRC, through every payload decoder. The contract:
// malformed input returns an error — no panics, and no allocation larger
// than the bounds-checked frame length (enforced here by capping the fuzz
// decoder at 1 MiB so an over-allocation would OOM the fuzz engine's
// malloc limit rather than pass silently).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 14})
	f.Add(AppendFrame(nil, Frame{Op: OpPing, ID: 1}))
	f.Add(AppendFrame(nil, Frame{Op: OpPut, ID: 2, Payload: AppendPutReq(nil, []byte("k"), []byte("v"))}))
	f.Add(AppendFrame(nil, Frame{Op: OpBatch, ID: 3, Payload: AppendBatchReq(nil, []BatchOp{
		{Key: []byte("a"), Value: []byte("1")}, {Key: []byte("b"), Delete: true},
	})}))
	f.Add(AppendFrame(nil, Frame{Op: OpMGet, ID: 4, Payload: AppendMGetReq(nil, [][]byte{[]byte("x")})}))
	f.Add(AppendFrame(nil, Frame{Op: OpScan, ID: 5, Payload: AppendScanReq(nil, []byte("s"), 10)}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplHello, ID: 7, Payload: AppendReplHelloReq(nil, 3, 12)}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplHello, Status: StatusOK, ID: 7, Payload: AppendReplHelloResp(nil, ReplModeSnapshot, 3, 12)}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplFrame, ID: 8, Payload: AppendReplFrame(nil, 9, []BatchOp{
		{Key: []byte("r"), Value: []byte("1")}, {Key: []byte("s"), Delete: true},
	})}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplAck, ID: 9, Payload: AppendReplAck(nil, 33)}))
	f.Add(AppendFrame(nil, Frame{Op: OpReplSnapshot, ID: 10, Payload: AppendReplSnapshot(nil, 5, []KV{
		{Key: []byte("k"), Value: []byte("v")},
	}, true)}))
	// A valid frame with a corrupted interior byte.
	corrupt := AppendFrame(nil, Frame{Op: OpGet, ID: 6, Payload: AppendKeyReq(nil, []byte("kk"))})
	corrupt[len(corrupt)/2] ^= 0x5a
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxFrame = 1 << 20
		fr, n, err := DecodeFrame(data, maxFrame)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n < 4+minBody || n > len(data) {
			t.Fatalf("consumed %d of %d", n, len(data))
		}
		// A decoded frame must re-encode to the exact bytes consumed.
		re := AppendFrame(nil, fr)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
		// Payload decoders must not panic either; aliasing is fine here.
		switch fr.Op {
		case OpPut:
			DecodePutReq(fr.Payload)
		case OpGet, OpDel:
			DecodeKeyReq(fr.Payload)
		case OpBatch:
			DecodeBatchReq(fr.Payload)
		case OpMGet:
			DecodeMGetReq(fr.Payload)
			DecodeMGetResp(fr.Payload)
		case OpScan:
			DecodeScanReq(fr.Payload)
			DecodeScanResp(fr.Payload)
		case OpReplHello:
			DecodeReplHelloReq(fr.Payload)
			DecodeReplHelloResp(fr.Payload)
		case OpReplFrame:
			DecodeReplFrame(fr.Payload)
		case OpReplAck:
			DecodeReplAck(fr.Payload)
		case OpReplSnapshot:
			DecodeReplSnapshot(fr.Payload)
		}
		// The stream reader must agree with the buffer decoder.
		sf, serr := ReadFrame(bytes.NewReader(data[:n]), maxFrame)
		if serr != nil {
			t.Fatalf("ReadFrame disagreed: %v", serr)
		}
		if sf.Op != fr.Op || sf.Status != fr.Status || sf.ID != fr.ID || !bytes.Equal(sf.Payload, fr.Payload) {
			t.Fatalf("ReadFrame mismatch: %+v vs %+v", sf, fr)
		}
	})
}
