// Package hotness implements §3.3: object-popularity tracking with a
// cascading discriminator. Each partition owns a Tracker. Every client read
// or update inserts the key into the currently open bloom filter; when the
// filter has absorbed its design capacity it is sealed and pushed onto a
// FIFO cascade of at most MaxFilters sealed filters. A key is hot iff it
// appears in at least HotThreshold *consecutive* sealed filters — i.e. its
// access interval stayed below the window size for several windows in a row,
// which (Fig. 6a) strongly predicts the next access will come soon as well.
package hotness

import (
	"sync"

	"hyperdb/internal/bloom"
)

// Config sizes a Tracker.
type Config struct {
	// WindowCapacity is the number of distinct keys a filter window absorbs
	// before sealing. The paper sets it to the number of objects the
	// partition's NVMe share can store.
	WindowCapacity int
	// BitsPerKey sizes each filter (paper: 10, <1% false positives).
	BitsPerKey int
	// MaxFilters bounds the sealed cascade (paper: 4).
	MaxFilters int
	// HotThreshold is the consecutive-window count that classifies a key as
	// hot (paper: 3).
	HotThreshold int
}

// Fill applies the paper's defaults to unset fields.
func (c *Config) Fill() {
	if c.WindowCapacity <= 0 {
		c.WindowCapacity = 1 << 16
	}
	if c.BitsPerKey <= 0 {
		c.BitsPerKey = 10
	}
	if c.MaxFilters <= 0 {
		c.MaxFilters = 4
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = 3
	}
	if c.HotThreshold > c.MaxFilters {
		c.HotThreshold = c.MaxFilters
	}
}

// Tracker is one partition's cascading discriminator. Safe for concurrent
// use.
type Tracker struct {
	mu     sync.Mutex
	cfg    Config
	open   *bloom.Filter
	sealed []*bloom.Filter // sealed[0] = oldest
	seals  uint64
}

// NewTracker returns a tracker with cfg (zero fields take paper defaults).
func NewTracker(cfg Config) *Tracker {
	cfg.Fill()
	return &Tracker{
		cfg:  cfg,
		open: bloom.New(cfg.WindowCapacity, cfg.BitsPerKey),
	}
}

// Record notes one access to key and returns whether the key is now
// classified hot. This is the single call sites make on every read/update.
func (t *Tracker) Record(key []byte) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.open.Add(key)
	if t.open.Full() {
		t.sealed = append(t.sealed, t.open)
		t.seals++
		if len(t.sealed) > t.cfg.MaxFilters {
			t.sealed = t.sealed[1:]
		}
		t.open = bloom.New(t.cfg.WindowCapacity, t.cfg.BitsPerKey)
	}
	return t.isHotLocked(key)
}

// IsHot classifies key without recording an access.
func (t *Tracker) IsHot(key []byte) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.isHotLocked(key)
}

// isHotLocked scans the sealed cascade newest→oldest for a run of
// consecutive hits of at least HotThreshold.
func (t *Tracker) isHotLocked(key []byte) bool {
	run := 0
	for i := len(t.sealed) - 1; i >= 0; i-- {
		if t.sealed[i].Contains(key) {
			run++
			if run >= t.cfg.HotThreshold {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}

// SealedWindows returns how many filters have ever been sealed; experiments
// use it to confirm window turnover.
func (t *Tracker) SealedWindows() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seals
}

// CascadeDepth returns the current number of sealed filters (≤ MaxFilters).
func (t *Tracker) CascadeDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sealed)
}

// MemoryBytes estimates the tracker's footprint, demonstrating the "low
// memory overhead" claim: MaxFilters+1 filters × capacity × bits/key / 8.
func (t *Tracker) MemoryBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	per := int64(t.cfg.WindowCapacity) * int64(t.cfg.BitsPerKey) / 8
	return per * int64(len(t.sealed)+1)
}

// Reset drops all state, reopening an empty window.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.open = bloom.New(t.cfg.WindowCapacity, t.cfg.BitsPerKey)
	t.sealed = nil
}
