// Package hotness implements §3.3: object-popularity tracking with a
// cascading discriminator. Each partition owns a Tracker. Every client read
// or update inserts the key into the currently open bloom filter; when the
// filter has absorbed its design capacity it is sealed and pushed onto a
// FIFO cascade of at most MaxFilters sealed filters. A key is hot iff it
// appears in at least HotThreshold *consecutive* sealed filters — i.e. its
// access interval stayed below the window size for several windows in a row,
// which (Fig. 6a) strongly predicts the next access will come soon as well.
//
// The tracker sits on the foreground path of every Put/Get/Delete, so it is
// built to scale with concurrent clients: the open window is striped by key
// hash (each stripe owns an independently locked bloom filter), sealed
// windows are immutable and published through an atomic.Pointer snapshot,
// and sealing is single-writer. Record touches exactly one stripe mutex;
// IsHot and the hotness half of Record take no locks at all.
package hotness

import (
	"sync"
	"sync/atomic"

	"hyperdb/internal/bloom"
)

// Config sizes a Tracker.
type Config struct {
	// WindowCapacity is the number of distinct keys a filter window absorbs
	// before sealing. The paper sets it to the number of objects the
	// partition's NVMe share can store.
	WindowCapacity int
	// BitsPerKey sizes each filter (paper: 10, <1% false positives).
	BitsPerKey int
	// MaxFilters bounds the sealed cascade (paper: 4).
	MaxFilters int
	// HotThreshold is the consecutive-window count that classifies a key as
	// hot (paper: 3).
	HotThreshold int
	// Stripes overrides the open window's stripe count (0 = derive from
	// WindowCapacity, capped at 16). Stripes trade a little per-stripe
	// filter slack for contention-free concurrent Records.
	Stripes int
}

// Fill applies the paper's defaults to unset fields.
func (c *Config) Fill() {
	if c.WindowCapacity <= 0 {
		c.WindowCapacity = 1 << 16
	}
	if c.BitsPerKey <= 0 {
		c.BitsPerKey = 10
	}
	if c.MaxFilters <= 0 {
		c.MaxFilters = 4
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = 3
	}
	if c.HotThreshold > c.MaxFilters {
		c.HotThreshold = c.MaxFilters
	}
	if c.Stripes <= 0 {
		// Keep every stripe's expected share large enough that the per-stripe
		// filter stays accurate under hash imbalance; tiny (test-sized)
		// windows degenerate to a single stripe.
		c.Stripes = c.WindowCapacity / 512
		if c.Stripes > 16 {
			c.Stripes = 16
		}
		if c.Stripes < 1 {
			c.Stripes = 1
		}
	}
}

// stripe is one independently locked slice of the open window.
type stripe struct {
	mu   sync.Mutex
	open *bloom.Filter
	_    [40]byte // pad to a cache line; stripes sit in one slice
}

// window is one sealed discriminator window: the stripes' filters, frozen.
// Windows are immutable after sealing, so readers need no locks.
type window struct {
	stripes []*bloom.Filter
}

// contains reports whether key (in stripe si) was recorded in the window.
func (w *window) contains(si int, key []byte) bool {
	return w.stripes[si].Contains(key)
}

// Tracker is one partition's cascading discriminator. Safe for concurrent
// use: Record takes one stripe mutex, IsHot takes none.
type Tracker struct {
	cfg       Config
	stripeCap int   // distinct-key capacity of each stripe's filter
	perWindow int64 // memory footprint of one window's filters

	stripes  []stripe
	inserted atomic.Int64 // distinct inserts into the open window
	seals    atomic.Uint64

	sealMu  sync.Mutex                // serialises window rotation
	cascade atomic.Pointer[[]*window] // sealed windows, oldest first
}

// NewTracker returns a tracker with cfg (zero fields take paper defaults).
func NewTracker(cfg Config) *Tracker {
	cfg.Fill()
	// 25% slack absorbs hash imbalance across stripes without inflating the
	// false-positive rate of the busier stripes.
	per := (cfg.WindowCapacity + cfg.Stripes - 1) / cfg.Stripes
	per += per / 4
	t := &Tracker{
		cfg:       cfg,
		stripeCap: per,
		stripes:   make([]stripe, cfg.Stripes),
	}
	for i := range t.stripes {
		t.stripes[i].open = bloom.New(per, cfg.BitsPerKey)
		t.perWindow += t.stripes[i].open.SizeBytes()
	}
	return t
}

// stripeFor hashes key to its stripe index (FNV-1a, mixed away from the
// filter's own probe bits).
func (t *Tracker) stripeFor(key []byte) int {
	if len(t.stripes) == 1 {
		return 0
	}
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	return int((h >> 17) % uint64(len(t.stripes)))
}

// Record notes one access to key and returns whether the key is now
// classified hot. This is the single call sites make on every read/update.
func (t *Tracker) Record(key []byte) bool {
	si := t.stripeFor(key)
	st := &t.stripes[si]
	st.mu.Lock()
	changed := st.open.Add(key)
	st.mu.Unlock()
	if changed && t.inserted.Add(1) >= int64(t.cfg.WindowCapacity) {
		t.seal()
	}
	return t.isHotIn(si, key)
}

// RecordBatch records every key and fills hot[i] with key i's resulting
// classification. One seal check covers the whole batch, and the distinct-key
// counter is bumped once instead of per key.
func (t *Tracker) RecordBatch(keys [][]byte, hot []bool) {
	var added int64
	for _, k := range keys {
		st := &t.stripes[t.stripeFor(k)]
		st.mu.Lock()
		if st.open.Add(k) {
			added++
		}
		st.mu.Unlock()
	}
	if added > 0 && t.inserted.Add(added) >= int64(t.cfg.WindowCapacity) {
		t.seal()
	}
	for i, k := range keys {
		hot[i] = t.isHotIn(t.stripeFor(k), k)
	}
}

// seal rotates the open window onto the cascade. Single-writer: concurrent
// callers queue on sealMu and all but the first observe the reset counter
// and leave. Stripe filters collected under their own locks are immutable
// from then on, which is what lets readers scan the cascade lock-free.
func (t *Tracker) seal() {
	t.sealMu.Lock()
	defer t.sealMu.Unlock()
	if t.inserted.Load() < int64(t.cfg.WindowCapacity) {
		return // another sealer already rotated this window
	}
	w := &window{stripes: make([]*bloom.Filter, len(t.stripes))}
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		w.stripes[i] = st.open
		st.open = bloom.New(t.stripeCap, t.cfg.BitsPerKey)
		st.mu.Unlock()
	}
	t.inserted.Store(0)
	var ws []*window
	if old := t.cascade.Load(); old != nil {
		ws = append(ws, *old...)
	}
	ws = append(ws, w)
	if len(ws) > t.cfg.MaxFilters {
		ws = ws[len(ws)-t.cfg.MaxFilters:]
	}
	t.cascade.Store(&ws)
	t.seals.Add(1)
}

// IsHot classifies key without recording an access. Lock-free.
func (t *Tracker) IsHot(key []byte) bool {
	return t.isHotIn(t.stripeFor(key), key)
}

// isHotIn scans the sealed cascade newest→oldest for a run of consecutive
// hits of at least HotThreshold, against an atomic snapshot.
func (t *Tracker) isHotIn(si int, key []byte) bool {
	c := t.cascade.Load()
	if c == nil {
		return false
	}
	ws := *c
	run := 0
	for i := len(ws) - 1; i >= 0; i-- {
		if ws[i].contains(si, key) {
			run++
			if run >= t.cfg.HotThreshold {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}

// SealedWindows returns how many filters have ever been sealed; experiments
// use it to confirm window turnover.
func (t *Tracker) SealedWindows() uint64 { return t.seals.Load() }

// CascadeDepth returns the current number of sealed windows (≤ MaxFilters).
func (t *Tracker) CascadeDepth() int {
	c := t.cascade.Load()
	if c == nil {
		return 0
	}
	return len(*c)
}

// MemoryBytes estimates the tracker's footprint, demonstrating the "low
// memory overhead" claim: (sealed windows + the open one) × window size.
func (t *Tracker) MemoryBytes() int64 {
	return t.perWindow * int64(t.CascadeDepth()+1)
}

// Reset drops all state, reopening an empty window.
func (t *Tracker) Reset() {
	t.sealMu.Lock()
	defer t.sealMu.Unlock()
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		st.open = bloom.New(t.stripeCap, t.cfg.BitsPerKey)
		st.mu.Unlock()
	}
	t.inserted.Store(0)
	t.cascade.Store(nil)
}
