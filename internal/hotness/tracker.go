// Package hotness implements §3.3: object-popularity tracking with a
// cascading discriminator. Each partition owns a Tracker. Every client read
// or update inserts the key into the currently open window; when the window
// has absorbed its design capacity it is sealed and pushed onto a FIFO
// cascade of at most MaxFilters sealed windows. A key is hot iff it appears
// in at least HotThreshold *consecutive* sealed windows — i.e. its access
// interval stayed below the window size for several windows in a row, which
// (Fig. 6a) strongly predicts the next access will come soon as well.
//
// Two window representations are supported, selected by Config.Mode:
//
//   - ModeBloom (default, paper-faithful): each window is a set of bloom
//     filters sized for WindowCapacity keys, and "appears in a window" is
//     filter membership. Memory scales linearly with WindowCapacity — and
//     WindowCapacity scales with the partition's object budget, so at huge
//     key cardinality the open window dominates DRAM.
//   - ModeSketch (the scale path): each window is a fixed-size Count-Min
//     Sketch with conservative update, "appears" means "estimated count ≥
//     the window's noise threshold", and the open window's occupancy is a
//     HyperLogLog cardinality estimate instead of an exact per-add counter.
//     Memory is O(1) in key cardinality with a tunable error bound;
//     WindowCapacity only sets the seal cadence.
//
// The tracker sits on the foreground path of every Put/Get/Delete, so it is
// built to scale with concurrent clients: keys are hashed exactly once
// (stripe choice, bloom probes, sketch probes and the HLL all derive from
// the same 64-bit hash), the open window is striped by key hash (each
// stripe owns independently locked state), sealed windows are immutable and
// published through an atomic.Pointer snapshot, and sealing is
// single-writer. Record touches exactly one stripe mutex; IsHot and the
// hotness half of Record take no locks at all.
package hotness

import (
	"runtime"
	"sync"
	"sync/atomic"

	"hyperdb/internal/bloom"
	"hyperdb/internal/sketch"
)

// Mode selects the open/sealed window representation.
type Mode string

// Tracker modes. The empty string means ModeBloom.
const (
	ModeBloom  Mode = "bloom"
	ModeSketch Mode = "sketch"
)

// Config sizes a Tracker.
type Config struct {
	// Mode selects bloom windows (paper-faithful reproduction default) or
	// fixed-size sketch windows (O(1) memory at huge key cardinality).
	Mode Mode
	// WindowCapacity is the number of distinct keys a window absorbs before
	// sealing. The paper sets it to the number of objects the partition's
	// NVMe share can store. In sketch mode it is the seal cadence only; the
	// sketch footprint does not grow with it past a fixed cap.
	WindowCapacity int
	// BitsPerKey sizes each bloom filter (paper: 10, <1% false positives).
	BitsPerKey int
	// MaxFilters bounds the sealed cascade (paper: 4).
	MaxFilters int
	// HotThreshold is the consecutive-window count that classifies a key as
	// hot (paper: 3).
	HotThreshold int
	// Stripes overrides the open window's stripe count. 0 derives it: in
	// bloom mode from WindowCapacity (each stripe's filter share must stay
	// large enough to hold its accuracy under hash imbalance), in sketch
	// mode from GOMAXPROCS (windows are fixed-size, so stripes exist purely
	// to keep concurrent Records off each other's locks). Capped at 16.
	Stripes int
	// SketchWidth is the per-stripe Count-Min row width (counters). 0
	// derives it from the stripe's window share, capped at 32 Ki counters —
	// the cap is what makes sketch-mode memory flat in cardinality.
	SketchWidth int
	// SketchDepth is the Count-Min row count (0 = 4, δ = e⁻⁴ ≈ 1.8%).
	SketchDepth int
	// SketchMinCount floors the per-window classification threshold: a key
	// "appears" in a sealed sketch window when its estimated count reaches
	// max(SketchMinCount, the window's collision-noise threshold). 0 = 1.
	SketchMinCount int
	// HLLPrecision is the per-stripe HyperLogLog precision for open-window
	// cardinality (0 = 12: 4 KiB per stripe, ~1.6% standard error).
	HLLPrecision int
}

// Fill applies the paper's defaults to unset fields.
func (c *Config) Fill() {
	if c.Mode == "" {
		c.Mode = ModeBloom
	}
	if c.WindowCapacity <= 0 {
		c.WindowCapacity = 1 << 16
	}
	if c.BitsPerKey <= 0 {
		c.BitsPerKey = 10
	}
	if c.MaxFilters <= 0 {
		c.MaxFilters = 4
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = 3
	}
	if c.HotThreshold > c.MaxFilters {
		c.HotThreshold = c.MaxFilters
	}
	if c.Stripes <= 0 {
		if c.Mode == ModeSketch {
			// Windows are fixed-size sketches: striping costs a constant
			// amount of memory per stripe regardless of WindowCapacity, so
			// derive the count from expected concurrency alone. 2× absorbs
			// goroutine oversubscription.
			c.Stripes = 2 * runtime.GOMAXPROCS(0)
		} else {
			// Keep every stripe's expected share large enough that the
			// per-stripe filter stays accurate under hash imbalance; tiny
			// (test-sized) windows degenerate to a single stripe.
			c.Stripes = c.WindowCapacity / 512
		}
		if c.Stripes > 16 {
			c.Stripes = 16
		}
		if c.Stripes < 1 {
			c.Stripes = 1
		}
	}
	if c.SketchDepth <= 0 {
		c.SketchDepth = 4
	}
	if c.SketchMinCount <= 0 {
		c.SketchMinCount = 1
	}
	if c.HLLPrecision <= 0 {
		c.HLLPrecision = 12
	}
	if c.SketchWidth <= 0 {
		// 4× the stripe's distinct-key share keeps sealed-window collision
		// noise near bloom's false-positive rate while the window is small;
		// the cap bounds memory once WindowCapacity outgrows it (the sealed
		// window then classifies by count threshold, not presence).
		share := c.WindowCapacity / c.Stripes
		w := 4 * share
		if w < 1<<8 {
			w = 1 << 8
		}
		if w > 1<<15 {
			w = 1 << 15
		}
		c.SketchWidth = w
	}
}

// stripe is one independently locked slice of the open window. Exactly one
// of the bloom/sketch field sets is live, per the tracker's mode.
type stripe struct {
	mu sync.Mutex

	// Bloom mode: the open filter.
	open *bloom.Filter

	// Sketch mode: the open frequency sketch, the stripe's distinct-key
	// estimator, the access count feeding the seal-time noise threshold,
	// and the last cardinality estimate published to the tracker's shared
	// occupancy counter (all guarded by mu).
	cms     *sketch.CMS
	hll     *sketch.HLL
	adds    uint64
	lastEst int64

	// Discriminator-health counters (striped so the shared-counter
	// contention stays off the hot path; Stats sums them).
	records atomic.Uint64
	hotHits atomic.Uint64
}

// window is one sealed discriminator window, frozen at rotation. Exactly
// one of blooms/cms is non-nil. Windows are immutable after sealing, so
// readers need no locks.
type window struct {
	blooms []*bloom.Filter
	cms    []*sketch.CMS
	// minCounts is the per-stripe classification threshold for sketch
	// windows: max(SketchMinCount, the stripe's collision-noise floor at
	// seal time).
	minCounts []uint32
}

// containsHash reports whether the key hashed to h (in stripe si) appeared
// in the window.
func (w *window) containsHash(si int, h uint64) bool {
	if w.blooms != nil {
		return w.blooms[si].ContainsHash(h)
	}
	return w.cms[si].AtLeastHash(h, w.minCounts[si])
}

// Tracker is one partition's cascading discriminator. Safe for concurrent
// use: Record takes one stripe mutex, IsHot takes none.
type Tracker struct {
	cfg       Config
	stripeCap int   // bloom mode: distinct-key capacity of each stripe's filter
	perWindow int64 // memory footprint of one window (filters or sketches)
	hllBytes  int64 // sketch mode: open-window HLL footprint across stripes

	stripes   []stripe
	occupancy atomic.Int64 // open-window distinct keys: exact (bloom) or HLL-estimated (sketch)
	seals     atomic.Uint64

	sealMu  sync.Mutex                // serialises window rotation
	cascade atomic.Pointer[[]*window] // sealed windows, oldest first
}

// NewTracker returns a tracker with cfg (zero fields take paper defaults).
func NewTracker(cfg Config) *Tracker {
	cfg.Fill()
	t := &Tracker{
		cfg:     cfg,
		stripes: make([]stripe, cfg.Stripes),
	}
	if cfg.Mode == ModeSketch {
		for i := range t.stripes {
			st := &t.stripes[i]
			st.cms = sketch.NewCMS(cfg.SketchWidth, cfg.SketchDepth)
			st.hll = sketch.NewHLL(cfg.HLLPrecision)
			t.perWindow += st.cms.SizeBytes()
			t.hllBytes += st.hll.SizeBytes()
		}
	} else {
		// 25% slack absorbs hash imbalance across stripes without inflating
		// the false-positive rate of the busier stripes.
		per := (cfg.WindowCapacity + cfg.Stripes - 1) / cfg.Stripes
		per += per / 4
		t.stripeCap = per
		for i := range t.stripes {
			t.stripes[i].open = bloom.New(per, cfg.BitsPerKey)
			t.perWindow += t.stripes[i].open.SizeBytes()
		}
	}
	return t
}

// Mode returns the resolved window representation.
func (t *Tracker) Mode() Mode { return t.cfg.Mode }

// stripeIndex maps the 64-bit key hash to a stripe (mixed away from the
// low/high halves the filter and sketch probes consume).
func (t *Tracker) stripeIndex(h uint64) int {
	if len(t.stripes) == 1 {
		return 0
	}
	return int((h >> 17) % uint64(len(t.stripes)))
}

// record inserts the hashed key into stripe si's open window and reports
// the occupancy delta the caller must publish (bloom: 1 for a distinct
// insert; sketch: the change in the stripe's HLL cardinality estimate).
func (t *Tracker) record(si int, h uint64) int64 {
	st := &t.stripes[si]
	st.records.Add(1)
	if t.cfg.Mode == ModeSketch {
		st.mu.Lock()
		st.cms.AddHash(h)
		st.adds++
		var delta int64
		if st.hll.AddHash(h) {
			// A register rose, so the cardinality estimate moved; republish
			// the stripe's contribution to the shared occupancy counter.
			// When no register changes (repeat keys, warmed-up registers)
			// the estimate is provably unchanged and the float math is
			// skipped entirely.
			est := int64(st.hll.Estimate())
			delta = est - st.lastEst
			st.lastEst = est
		}
		st.mu.Unlock()
		return delta
	}
	st.mu.Lock()
	changed := st.open.AddHash(h)
	st.mu.Unlock()
	if changed {
		return 1
	}
	return 0
}

// Record notes one access to key and returns whether the key is now
// classified hot. This is the single call sites make on every read/update.
// The key is scanned exactly once: stripe choice, window insert and the
// cascade check all share one 64-bit hash.
func (t *Tracker) Record(key []byte) bool {
	h := bloom.Hash64(key)
	si := t.stripeIndex(h)
	if delta := t.record(si, h); delta != 0 &&
		t.occupancy.Add(delta) >= int64(t.cfg.WindowCapacity) {
		t.seal()
	}
	hot := t.isHotHash(si, h)
	if hot {
		t.stripes[si].hotHits.Add(1)
	}
	return hot
}

// RecordBatch records every key and fills hot[i] with key i's resulting
// classification. Each key is hashed once (the hashes are reused by the
// classification pass), the occupancy counter is published once for the
// whole batch, and one seal check covers it.
func (t *Tracker) RecordBatch(keys [][]byte, hot []bool) {
	var arr [64]uint64
	hs := arr[:0]
	if len(keys) > len(arr) {
		hs = make([]uint64, 0, len(keys))
	}
	var delta int64
	for _, k := range keys {
		h := bloom.Hash64(k)
		hs = append(hs, h)
		delta += t.record(t.stripeIndex(h), h)
	}
	if delta != 0 && t.occupancy.Add(delta) >= int64(t.cfg.WindowCapacity) {
		t.seal()
	}
	for i, h := range hs {
		si := t.stripeIndex(h)
		hot[i] = t.isHotHash(si, h)
		if hot[i] {
			t.stripes[si].hotHits.Add(1)
		}
	}
}

// noiseFloor is the seal-time classification threshold for one sketch
// stripe: twice the stripe's mean counter load (truncated), floored at
// SketchMinCount. While load stays near or below 1 counter collisions are
// rare under conservative update, so the threshold remains 1 and the window
// keeps bloom's presence semantics — rounding up here would silently drop
// the once-per-window tail that bloom catches. Once the window's traffic
// outgrows the fixed sketch, only counts standing above the collision noise
// classify as "appeared".
func (t *Tracker) noiseFloor(adds uint64) uint32 {
	min := uint32(t.cfg.SketchMinCount)
	load := float64(adds) / float64(t.cfg.SketchWidth)
	if n := uint32(2 * load); n > min {
		return n
	}
	return min
}

// seal rotates the open window onto the cascade. Single-writer: concurrent
// callers queue on sealMu and all but the first observe the reset counter
// and leave. Stripe state collected under their own locks is immutable
// from then on, which is what lets readers scan the cascade lock-free.
func (t *Tracker) seal() {
	t.sealMu.Lock()
	defer t.sealMu.Unlock()
	if t.occupancy.Load() < int64(t.cfg.WindowCapacity) {
		return // another sealer already rotated this window
	}
	w := &window{}
	if t.cfg.Mode == ModeSketch {
		w.cms = make([]*sketch.CMS, len(t.stripes))
		w.minCounts = make([]uint32, len(t.stripes))
		for i := range t.stripes {
			st := &t.stripes[i]
			st.mu.Lock()
			w.cms[i] = st.cms
			w.minCounts[i] = t.noiseFloor(st.adds)
			st.cms = sketch.NewCMS(t.cfg.SketchWidth, t.cfg.SketchDepth)
			st.hll.Reset() // the HLL is never published; reuse it
			st.adds = 0
			st.lastEst = 0
			st.mu.Unlock()
		}
	} else {
		w.blooms = make([]*bloom.Filter, len(t.stripes))
		for i := range t.stripes {
			st := &t.stripes[i]
			st.mu.Lock()
			w.blooms[i] = st.open
			st.open = bloom.New(t.stripeCap, t.cfg.BitsPerKey)
			st.mu.Unlock()
		}
	}
	t.occupancy.Store(0)
	var ws []*window
	if old := t.cascade.Load(); old != nil {
		ws = append(ws, *old...)
	}
	ws = append(ws, w)
	if len(ws) > t.cfg.MaxFilters {
		ws = ws[len(ws)-t.cfg.MaxFilters:]
	}
	t.cascade.Store(&ws)
	t.seals.Add(1)
}

// IsHot classifies key without recording an access. Lock-free.
func (t *Tracker) IsHot(key []byte) bool {
	h := bloom.Hash64(key)
	return t.isHotHash(t.stripeIndex(h), h)
}

// isHotHash scans the sealed cascade newest→oldest for a run of consecutive
// hits of at least HotThreshold, against an atomic snapshot.
func (t *Tracker) isHotHash(si int, h uint64) bool {
	c := t.cascade.Load()
	if c == nil {
		return false
	}
	ws := *c
	run := 0
	for i := len(ws) - 1; i >= 0; i-- {
		if ws[i].containsHash(si, h) {
			run++
			if run >= t.cfg.HotThreshold {
				return true
			}
		} else {
			run = 0
		}
	}
	return false
}

// SealedWindows returns how many windows have ever been sealed; experiments
// use it to confirm window turnover.
func (t *Tracker) SealedWindows() uint64 { return t.seals.Load() }

// CascadeDepth returns the current number of sealed windows (≤ MaxFilters).
func (t *Tracker) CascadeDepth() int {
	c := t.cascade.Load()
	if c == nil {
		return 0
	}
	return len(*c)
}

// MemoryBytes estimates the tracker's current footprint: sealed windows
// plus the open one, plus (sketch mode) the open window's HLL estimators.
func (t *Tracker) MemoryBytes() int64 {
	return t.perWindow*int64(t.CascadeDepth()+1) + t.hllBytes
}

// FullMemoryBytes is the footprint with the cascade at MaxFilters — the
// steady-state number capacity planning (and the O(1)-memory CI check)
// cares about, independent of how many windows have sealed so far.
func (t *Tracker) FullMemoryBytes() int64 {
	return t.perWindow*int64(t.cfg.MaxFilters+1) + t.hllBytes
}

// Stats is a point-in-time discriminator-health snapshot.
type Stats struct {
	Mode         Mode
	Seals        uint64
	CascadeDepth int
	MemoryBytes  int64
	// Records counts keys observed via Record/RecordBatch; HotHits the
	// subset classified hot at record time. Their ratio is the partition's
	// hot-classification rate.
	Records uint64
	HotHits uint64
}

// HotRate is the fraction of recorded accesses classified hot.
func (s Stats) HotRate() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.HotHits) / float64(s.Records)
}

// Stats snapshots the tracker's health counters.
func (t *Tracker) Stats() Stats {
	s := Stats{
		Mode:         t.cfg.Mode,
		Seals:        t.seals.Load(),
		CascadeDepth: t.CascadeDepth(),
		MemoryBytes:  t.MemoryBytes(),
	}
	for i := range t.stripes {
		s.Records += t.stripes[i].records.Load()
		s.HotHits += t.stripes[i].hotHits.Load()
	}
	return s
}

// Reset drops all state, reopening an empty window.
func (t *Tracker) Reset() {
	t.sealMu.Lock()
	defer t.sealMu.Unlock()
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		if t.cfg.Mode == ModeSketch {
			st.cms.Reset()
			st.hll.Reset()
			st.adds = 0
			st.lastEst = 0
		} else {
			st.open = bloom.New(t.stripeCap, t.cfg.BitsPerKey)
		}
		st.mu.Unlock()
	}
	t.occupancy.Store(0)
	t.cascade.Store(nil)
}
