package hotness

import "sort"

// IntervalAnalyzer reproduces the measurement behind Figure 6a: for a replayed
// access trace it computes, per object, the conditional probability
// P(next interval < t | previous s intervals all < t), demonstrating that
// short historical access intervals predict a short next interval.
type IntervalAnalyzer struct {
	lastAccess map[string]int64
	intervals  map[string][]int64
	clock      int64
}

// NewIntervalAnalyzer returns an empty analyzer.
func NewIntervalAnalyzer() *IntervalAnalyzer {
	return &IntervalAnalyzer{
		lastAccess: make(map[string]int64),
		intervals:  make(map[string][]int64),
	}
}

// Observe replays one access to key; the logical clock advances by one per
// access (intervals are measured in accesses, i.e. fractions of the workload
// size, as the paper does).
func (a *IntervalAnalyzer) Observe(key []byte) {
	k := string(key)
	if last, ok := a.lastAccess[k]; ok {
		a.intervals[k] = append(a.intervals[k], a.clock-last)
	}
	a.lastAccess[k] = a.clock
	a.clock++
}

// ConditionalProbability computes, across all objects with at least s+1
// recorded intervals, the per-object probability that an interval is < t
// given the preceding s intervals were all < t, and returns the distribution
// (sorted ascending) so callers can report medians and percentiles like the
// paper's boxplots. t is in accesses.
func (a *IntervalAnalyzer) ConditionalProbability(t int64, s int) []float64 {
	var probs []float64
	for _, iv := range a.intervals {
		if len(iv) < s+1 {
			continue
		}
		var hits, trials int
		for i := s; i < len(iv); i++ {
			ok := true
			for j := i - s; j < i; j++ {
				if iv[j] >= t {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			trials++
			if iv[i] < t {
				hits++
			}
		}
		if trials > 0 {
			probs = append(probs, float64(hits)/float64(trials))
		}
	}
	sort.Float64s(probs)
	return probs
}

// Quantile picks the q-th quantile from a sorted distribution.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// TotalAccesses returns the number of observed accesses.
func (a *IntervalAnalyzer) TotalAccesses() int64 { return a.clock }

// TrackedObjects returns how many distinct keys have at least one interval.
func (a *IntervalAnalyzer) TrackedObjects() int { return len(a.intervals) }
