package hotness

import (
	"fmt"
	"math"
	"sort"
	"testing"
)

// fillWindow inserts distinct filler keys until the tracker seals the
// currently open window.
func fillWindow(t *Tracker, tag string) {
	start := t.SealedWindows()
	for i := 0; t.SealedWindows() == start; i++ {
		t.Record([]byte(fmt.Sprintf("filler-%s-%d", tag, i)))
		if i > 1<<20 {
			panic("window never sealed")
		}
	}
}

func TestHotAfterConsecutiveWindows(t *testing.T) {
	tr := NewTracker(Config{WindowCapacity: 64, HotThreshold: 3, MaxFilters: 4})
	key := []byte("popular")
	// Appear in three consecutive windows.
	for w := 0; w < 3; w++ {
		tr.Record(key)
		fillWindow(tr, fmt.Sprintf("w%d", w))
	}
	if !tr.IsHot(key) {
		t.Fatal("key present in 3 consecutive sealed windows must be hot")
	}
}

func TestNotHotWithFewerWindows(t *testing.T) {
	tr := NewTracker(Config{WindowCapacity: 64, HotThreshold: 3, MaxFilters: 4})
	key := []byte("lukewarm")
	for w := 0; w < 2; w++ {
		tr.Record(key)
		fillWindow(tr, fmt.Sprintf("w%d", w))
	}
	if tr.IsHot(key) {
		t.Fatal("2 windows < threshold 3: must not be hot")
	}
}

func TestGapBreaksRun(t *testing.T) {
	tr := NewTracker(Config{WindowCapacity: 64, HotThreshold: 3, MaxFilters: 4})
	key := []byte("bursty")
	tr.Record(key)
	fillWindow(tr, "w0")
	tr.Record(key)
	fillWindow(tr, "w1")
	// Skip a window.
	fillWindow(tr, "w2-gap")
	tr.Record(key)
	fillWindow(tr, "w3")
	if tr.IsHot(key) {
		t.Fatal("non-consecutive appearances must not classify hot")
	}
}

func TestFIFOEviction(t *testing.T) {
	tr := NewTracker(Config{WindowCapacity: 64, HotThreshold: 3, MaxFilters: 3})
	key := []byte("ancient")
	for w := 0; w < 3; w++ {
		tr.Record(key)
		fillWindow(tr, fmt.Sprintf("w%d", w))
	}
	if !tr.IsHot(key) {
		t.Fatal("should be hot initially")
	}
	// Push enough new windows to evict all of the key's filters.
	for w := 0; w < 3; w++ {
		fillWindow(tr, fmt.Sprintf("new%d", w))
	}
	if tr.IsHot(key) {
		t.Fatal("key's windows were evicted; must no longer be hot")
	}
	if tr.CascadeDepth() != 3 {
		t.Fatalf("cascade depth = %d, want 3 (MaxFilters)", tr.CascadeDepth())
	}
}

func TestDefaultsApplied(t *testing.T) {
	tr := NewTracker(Config{})
	if tr.cfg.BitsPerKey != 10 || tr.cfg.MaxFilters != 4 || tr.cfg.HotThreshold != 3 {
		t.Fatalf("defaults = %+v", tr.cfg)
	}
	// Threshold clamped to MaxFilters.
	tr2 := NewTracker(Config{MaxFilters: 2, HotThreshold: 5, WindowCapacity: 16})
	if tr2.cfg.HotThreshold != 2 {
		t.Fatalf("threshold not clamped: %d", tr2.cfg.HotThreshold)
	}
}

func TestResetClearsState(t *testing.T) {
	tr := NewTracker(Config{WindowCapacity: 32, HotThreshold: 1, MaxFilters: 2})
	tr.Record([]byte("k"))
	fillWindow(tr, "w")
	if !tr.IsHot([]byte("k")) {
		t.Fatal("precondition: hot")
	}
	tr.Reset()
	if tr.IsHot([]byte("k")) || tr.CascadeDepth() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestMemoryBytesBounded(t *testing.T) {
	tr := NewTracker(Config{WindowCapacity: 1000, BitsPerKey: 10, MaxFilters: 4})
	for w := 0; w < 10; w++ {
		fillWindow(tr, fmt.Sprintf("w%d", w))
	}
	// 5 filters (4 sealed + 1 open) × 1000 keys × 10 bits = ~6.25 KiB.
	if mb := tr.MemoryBytes(); mb > 10<<10 {
		t.Fatalf("tracker memory %d bytes exceeds budget", mb)
	}
}

func TestIntervalAnalyzerBasics(t *testing.T) {
	a := NewIntervalAnalyzer()
	// Key "hot" accessed every 2 ticks; "cold" every 10.
	for i := 0; i < 100; i++ {
		a.Observe([]byte("hot"))
		if i%5 == 0 {
			a.Observe([]byte("cold"))
		}
		a.Observe([]byte(fmt.Sprintf("noise-%d", i)))
	}
	if a.TrackedObjects() < 2 {
		t.Fatalf("tracked = %d", a.TrackedObjects())
	}
	// With t large enough to cover hot's interval but not cold's:
	probs := a.ConditionalProbability(5, 1)
	if len(probs) == 0 {
		t.Fatal("no conditional probabilities")
	}
	if Quantile(probs, 0.99) < 0.9 {
		t.Fatalf("hot key should have high conditional probability: %v", probs)
	}
}

func TestIntervalCorrelationRisesWithS(t *testing.T) {
	// The Figure 6a shape: conditional probability grows with the number
	// of consistent past intervals s.
	a := NewIntervalAnalyzer()
	gen := newTestZipf(2000, 0.99, 7)
	for i := 0; i < 400000; i++ {
		a.Observe([]byte(fmt.Sprintf("obj-%d", gen.next())))
	}
	tWin := int64(400000 / 5) // 20% of workload
	med1 := Quantile(a.ConditionalProbability(tWin, 1), 0.5)
	med5 := Quantile(a.ConditionalProbability(tWin, 5), 0.5)
	if med5 < med1 {
		t.Fatalf("P(s=5)=%.3f < P(s=1)=%.3f — correlation should rise with s", med5, med1)
	}
	if med1 < 0.3 {
		t.Fatalf("median conditional probability %.3f implausibly low", med1)
	}
}

// newTestZipf is a tiny zipf sampler with a precomputed CDF (test-only;
// avoids a dependency on the ycsb package).
type testZipf struct {
	cdf   []float64
	state uint64
}

func newTestZipf(n int, theta float64, seed uint64) *testZipf {
	z := &testZipf{cdf: make([]float64, n), state: seed}
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
		z.cdf[i-1] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

func (z *testZipf) rand() float64 {
	z.state ^= z.state << 13
	z.state ^= z.state >> 7
	z.state ^= z.state << 17
	return float64(z.state%(1<<30)) / float64(1<<30)
}

func (z *testZipf) next() int {
	u := z.rand()
	return sort.SearchFloat64s(z.cdf, u)
}
