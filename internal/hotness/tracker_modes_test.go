package hotness

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// bothModes runs f against the bloom- and sketch-backed trackers so the two
// representations are held to identical discriminator semantics.
func bothModes(t *testing.T, f func(t *testing.T, mode Mode)) {
	for _, m := range []Mode{ModeBloom, ModeSketch} {
		t.Run(string(m), func(t *testing.T) { f(t, m) })
	}
}

func TestModesAgreeOnCascadeSemantics(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		tr := NewTracker(Config{Mode: mode, WindowCapacity: 64, HotThreshold: 3, MaxFilters: 4})
		key := []byte("popular")
		for w := 0; w < 3; w++ {
			tr.Record(key)
			fillWindow(tr, fmt.Sprintf("w%d", w))
		}
		if !tr.IsHot(key) {
			t.Fatal("key present in 3 consecutive sealed windows must be hot")
		}

		// A key with a gap in its appearances must not classify.
		tr2 := NewTracker(Config{Mode: mode, WindowCapacity: 64, HotThreshold: 3, MaxFilters: 4})
		bursty := []byte("bursty")
		tr2.Record(bursty)
		fillWindow(tr2, "w0")
		tr2.Record(bursty)
		fillWindow(tr2, "w1")
		fillWindow(tr2, "w2-gap")
		tr2.Record(bursty)
		fillWindow(tr2, "w3")
		if tr2.IsHot(bursty) {
			t.Fatal("non-consecutive appearances must not classify hot")
		}

		// FIFO eviction bounds the cascade and forgets old keys.
		for w := 0; w < 4; w++ {
			fillWindow(tr, fmt.Sprintf("evict%d", w))
		}
		if tr.IsHot(key) {
			t.Fatal("key's windows were evicted; must no longer be hot")
		}
		if tr.CascadeDepth() != 4 {
			t.Fatalf("cascade depth = %d, want 4 (MaxFilters)", tr.CascadeDepth())
		}

		// Reset reopens an empty discriminator.
		tr.Reset()
		if tr.CascadeDepth() != 0 || tr.IsHot(key) {
			t.Fatal("reset incomplete")
		}
	})
}

// TestSketchNoiseFloor: once a window's traffic outgrows the fixed sketch,
// the seal-time threshold rises above presence so that only keys accessed
// well above the collision noise "appear" — a once-per-window straggler must
// not ride counter collisions into the hot set.
func TestSketchNoiseFloor(t *testing.T) {
	tr := NewTracker(Config{
		Mode: ModeSketch, WindowCapacity: 2000, HotThreshold: 3, MaxFilters: 4,
		Stripes: 1, SketchWidth: 256,
	})
	hot, cold := []byte("frequent"), []byte("straggler")
	var buf [8]byte
	for w := 0; w < 3; w++ {
		for i := 0; i < 100; i++ {
			tr.Record(hot)
		}
		tr.Record(cold)
		start := tr.SealedWindows()
		for i := 0; tr.SealedWindows() == start; i++ {
			binary.BigEndian.PutUint64(buf[:], uint64(w)<<32|uint64(i))
			tr.Record(buf[:])
			if i > 1<<20 {
				t.Fatal("window never sealed")
			}
		}
	}
	if !tr.IsHot(hot) {
		t.Fatal("key accessed 100×/window must stand above the noise floor")
	}
	if tr.IsHot(cold) {
		t.Fatal("once-per-window key must fall below the noise floor in overloaded windows")
	}
}

// TestSketchMemoryFlatInCardinality is the unit-level O(1)-memory check:
// growing WindowCapacity by 1000× must leave the sketch tracker's
// steady-state footprint within 2× (it saturates at the width cap), while
// the bloom tracker's grows with capacity as the paper sizes it.
func TestSketchMemoryFlatInCardinality(t *testing.T) {
	mem := func(mode Mode, cap int) int64 {
		return NewTracker(Config{Mode: mode, WindowCapacity: cap, Stripes: 8}).FullMemoryBytes()
	}
	small, large := mem(ModeSketch, 100_000), mem(ModeSketch, 100_000_000)
	if large > 2*small {
		t.Fatalf("sketch footprint grew %d → %d bytes over 1000× cardinality", small, large)
	}
	bSmall, bLarge := mem(ModeBloom, 100_000), mem(ModeBloom, 100_000_000)
	if bLarge < 100*bSmall {
		t.Fatalf("bloom footprint %d → %d did not scale with capacity — baseline broken?", bSmall, bLarge)
	}
}

// TestStripeDerivationByMode pins the Fill rules: bloom stripes follow
// WindowCapacity (filter-accuracy driven), sketch stripes follow expected
// concurrency (fixed-size windows), and both clamp to [1, 16].
func TestStripeDerivationByMode(t *testing.T) {
	c := Config{Mode: ModeBloom, WindowCapacity: 1 << 16}
	c.Fill()
	if c.Stripes != 16 {
		t.Fatalf("bloom 64Ki window: stripes = %d, want 16", c.Stripes)
	}
	c = Config{Mode: ModeBloom, WindowCapacity: 64}
	c.Fill()
	if c.Stripes != 1 {
		t.Fatalf("bloom tiny window: stripes = %d, want 1", c.Stripes)
	}

	want := 2 * runtime.GOMAXPROCS(0)
	if want > 16 {
		want = 16
	}
	if want < 1 {
		want = 1
	}
	for _, cap := range []int{64, 1 << 16, 1 << 26} {
		c = Config{Mode: ModeSketch, WindowCapacity: cap}
		c.Fill()
		if c.Stripes != want {
			t.Fatalf("sketch stripes = %d at capacity %d, want %d (concurrency-derived, capacity-independent)",
				c.Stripes, cap, want)
		}
	}

	// Explicit stripe counts are respected in both modes.
	for _, m := range []Mode{ModeBloom, ModeSketch} {
		c = Config{Mode: m, Stripes: 5}
		c.Fill()
		if c.Stripes != 5 {
			t.Fatalf("%s: explicit Stripes overridden to %d", m, c.Stripes)
		}
	}
}

func TestTrackerStatsCounters(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		tr := NewTracker(Config{Mode: mode, WindowCapacity: 64, HotThreshold: 1, MaxFilters: 2})
		key := []byte("k")
		tr.Record(key)
		fillWindow(tr, "w0")
		before := tr.Stats()
		if !tr.Record(key) {
			t.Fatal("key in the sealed window must be hot at threshold 1")
		}
		s := tr.Stats()
		if s.Mode != mode {
			t.Fatalf("stats mode = %q", s.Mode)
		}
		if s.Records != before.Records+1 || s.HotHits != before.HotHits+1 {
			t.Fatalf("counters did not advance: %+v → %+v", before, s)
		}
		if s.Seals == 0 || s.CascadeDepth == 0 || s.MemoryBytes <= 0 {
			t.Fatalf("implausible stats: %+v", s)
		}
		if r := s.HotRate(); r <= 0 || r > 1 {
			t.Fatalf("hot rate %f out of range", r)
		}
	})
}

// TestConcurrentRecordSealStress hammers Record/RecordBatch/IsHot/Stats from
// many goroutines while windows churn; run with -race this is the
// sketch-mode mirror of the bloom tracker's concurrency guarantee.
func TestConcurrentRecordSealStress(t *testing.T) {
	bothModes(t, func(t *testing.T, mode Mode) {
		tr := NewTracker(Config{Mode: mode, WindowCapacity: 256, HotThreshold: 2, MaxFilters: 3, Stripes: 4})
		const goroutines = 8
		iters := 3000
		if testing.Short() {
			iters = 500
		}
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				keys := make([][]byte, 8)
				hot := make([]bool, 8)
				var buf [8]byte
				for i := 0; i < iters; i++ {
					binary.BigEndian.PutUint64(buf[:], uint64(g)<<40|uint64(i%701))
					tr.Record(buf[:])
					tr.IsHot(buf[:])
					if i%64 == 0 {
						for j := range keys {
							k := make([]byte, 8)
							binary.BigEndian.PutUint64(k, uint64(g)<<40|uint64((i+j)%701))
							keys[j] = k
						}
						tr.RecordBatch(keys, hot)
					}
					if i%512 == 0 {
						tr.Stats()
					}
				}
			}(g)
		}
		wg.Wait()
		if tr.SealedWindows() == 0 {
			t.Fatal("stress run never sealed a window")
		}
		if d := tr.CascadeDepth(); d > 3 {
			t.Fatalf("cascade depth %d exceeds MaxFilters", d)
		}
	})
}
