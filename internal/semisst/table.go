package semisst

import (
	"bytes"
	"fmt"
	"sort"

	"hyperdb/internal/block"
	"hyperdb/internal/compress"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

// LiveBytes returns the bytes held by valid data blocks.
func (t *Table) LiveBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n int64
	for _, li := range t.live {
		n += int64(t.blocks[li].Handle.Size)
	}
	return n
}

// FileBytes returns the on-device footprint including dirty blocks and the
// index tail — the number space-amplification is computed from.
func (t *Table) FileBytes() int64 { return t.f.Size() }

// StaleBytes returns bytes occupied by dirty (superseded) blocks.
func (t *Table) StaleBytes() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stale
}

// DirtyRatio returns stale bytes over total data bytes; §3.4 triggers a full
// compaction when this exceeds T_clean.
func (t *Table) DirtyRatio() float64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var live int64
	for _, li := range t.live {
		live += int64(t.blocks[li].Handle.Size)
	}
	if live+t.stale == 0 {
		return 0
	}
	return float64(t.stale) / float64(live+t.stale)
}

// NumEntries returns the count of live entries.
func (t *Table) NumEntries() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, li := range t.live {
		n += t.blocks[li].Entries
	}
	return n
}

// NumLiveBlocks returns the count of valid data blocks.
func (t *Table) NumLiveBlocks() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.live)
}

// Range returns the closed-open user-key span of the live blocks, or the
// empty range when the table has none.
func (t *Table) Range() keys.Range {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.live) == 0 {
		return keys.Range{Lo: []byte{}, Hi: []byte{}}
	}
	first := t.blocks[t.live[0]].First
	last := t.blocks[t.live[len(t.live)-1]].Last
	return keys.Range{Lo: append([]byte(nil), first...), Hi: keys.Successor(last)}
}

// LiveBlockMetas returns snapshots of the valid blocks in key order. The
// Keys slices are shared, not copied; treat as read-only.
func (t *Table) LiveBlockMetas() []BlockMeta {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]BlockMeta, 0, len(t.live))
	for _, li := range t.live {
		out = append(out, t.blocks[li])
	}
	return out
}

// ChargeIndexRead accounts one read of the table's index block, against the
// performance-tier mirror when configured (§3.1's low-cost index lookup) or
// the table's own device otherwise. Compaction planners call this before
// consulting block key lists.
func (t *Table) ChargeIndexRead(op device.Op) {
	t.mu.RLock()
	n := t.idxBytes
	metaF := t.metaF
	t.mu.RUnlock()
	if metaF != nil {
		if sz := metaF.Size(); sz > 0 {
			buf := make([]byte, sz)
			metaF.ReadAt(buf, 0, op)
		}
		return
	}
	if n == 0 {
		return
	}
	buf := make([]byte, n)
	t.f.ReadAt(buf, t.f.Size()-footerSize-n, op)
}

// findLiveBlock returns the position in t.live of the block whose range
// contains user, or -1. Caller holds mu (read).
func (t *Table) findLiveBlock(user []byte) int {
	lo, hi := 0, len(t.live)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.blocks[t.live[mid]].First, user) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first block with First > user; candidate is lo-1.
	if lo == 0 {
		return -1
	}
	b := &t.blocks[t.live[lo-1]]
	if bytes.Compare(user, b.Last) > 0 {
		return -1
	}
	return lo - 1
}

// readBlockData fetches one data block, via the page cache when configured.
// gen namespaces cache keys per rewrite generation so blocks cached before a
// full compaction can never serve the offsets it recycled. The cache holds
// stored (possibly compressed) bytes; tagged blocks decompress after the
// fetch, and a torn or corrupted payload fails closed with an error.
func (t *Table) readBlockData(gen uint64, bm *BlockMeta, op device.Op) ([]byte, error) {
	var key string
	data := []byte(nil)
	if t.opts.PageCache != nil {
		key = fmt.Sprintf("%s@%d#%d", t.f.Name(), gen, bm.Handle.Offset)
		if cached, ok := t.opts.PageCache.Get(key); ok {
			data = cached
		}
	}
	if data == nil {
		data = make([]byte, bm.Handle.Size)
		if _, err := t.f.ReadAt(data, int64(bm.Handle.Offset), op); err != nil {
			return nil, err
		}
		if t.opts.PageCache != nil {
			t.opts.PageCache.Put(key, data)
		}
	}
	if bm.Tagged {
		return compress.Decode(data, maxRawBlock)
	}
	return data, nil
}

// Get returns the newest version of user visible at snapshot seq. found is
// false when the table holds no version; tombstones return found=true with
// kind=KindDelete. Reads run lock-free against the device; a full
// compaction that recycles offsets mid-read is detected via the generation
// counter and the lookup retries.
func (t *Table) Get(user []byte, seq uint64, op device.Op) (value []byte, kind keys.Kind, found bool, err error) {
	for {
		t.mu.RLock()
		gen := t.gen
		li := t.findLiveBlock(user)
		if li < 0 {
			t.mu.RUnlock()
			return nil, 0, false, nil
		}
		bm := t.blocks[t.live[li]]
		t.mu.RUnlock()

		if !bm.Filter.Contains(user) {
			return nil, 0, false, nil
		}
		data, rerr := t.readBlockData(gen, &bm, op)
		value, kind, found, err = nil, 0, false, rerr
		if err == nil {
			var it *block.Iter
			it, err = block.NewIter(data)
			if err == nil {
				it.SeekGE(keys.MakeSearchKey(user, seq))
				if it.Valid() && bytes.Equal(it.Key().User, user) {
					value = append([]byte(nil), it.Value()...)
					kind = it.Key().Kind
					found = true
				} else {
					err = it.Err()
				}
			}
		}
		t.mu.RLock()
		stale := t.gen != gen
		t.mu.RUnlock()
		if stale {
			continue // raced a rewrite; metadata and data are refreshed now
		}
		return value, kind, found, err
	}
}

// ReadBlockEntries reads and decodes the entries of one live block (by its
// position in LiveBlockMetas order). Callers are mutators serialised with
// rewrites, so no generation retry is needed.
func (t *Table) ReadBlockEntries(bm BlockMeta, op device.Op) ([]Entry, error) {
	if op.Background {
		// Compaction and migration stream whole blocks; the device grants
		// streaming commands the sequential discount.
		op.Sequential = true
	}
	t.mu.RLock()
	gen := t.gen
	t.mu.RUnlock()
	data, err := t.readBlockData(gen, &bm, op)
	if err != nil {
		return nil, err
	}
	it, err := block.NewIter(data)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for it.First(); it.Valid(); it.Next() {
		k := it.Key()
		out = append(out, Entry{
			Key:   keys.InternalKey{User: append([]byte(nil), k.User...), Seq: k.Seq, Kind: k.Kind},
			Value: append([]byte(nil), it.Value()...),
		})
	}
	return out, it.Err()
}

// MergeStats reports what a Merge did, feeding the experiment counters.
type MergeStats struct {
	BlocksDirtied int
	EntriesRead   int
	EntriesMerged int
	BytesRead     int64
}

// Merge integrates incoming (sorted by user key, one version per key, newest
// versions) into the table: live blocks overlapping incoming are read and
// dirtied, their surviving entries merged with incoming, and the result
// appended as fresh blocks (Fig. 5). Tombstones in incoming are retained
// (dropOnMerge false) or dropped (true, for the bottom level).
func (t *Table) Merge(incoming []Entry, dropTombstones bool, op device.Op) (MergeStats, error) {
	var st MergeStats
	if len(incoming) == 0 {
		return st, nil
	}
	span := keys.Range{
		Lo: incoming[0].Key.User,
		Hi: keys.Successor(incoming[len(incoming)-1].Key.User),
	}

	// Identify overlapping live blocks.
	t.mu.RLock()
	var dirty []int // indices into t.blocks
	var victims []BlockMeta
	for _, li := range t.live {
		b := t.blocks[li]
		if b.Range().Overlaps(span) {
			dirty = append(dirty, li)
			victims = append(victims, b)
		}
	}
	t.mu.RUnlock()

	// Read surviving entries from the dirty blocks.
	var existing []Entry
	for _, bm := range victims {
		es, err := t.ReadBlockEntries(bm, op)
		if err != nil {
			return st, err
		}
		existing = append(existing, es...)
		st.EntriesRead += len(es)
		st.BytesRead += int64(bm.Handle.Size)
	}
	st.BlocksDirtied = len(dirty)

	merged := mergeEntries(existing, incoming, dropTombstones)
	st.EntriesMerged = len(merged)
	return st, t.appendMerge(merged, dirty, op)
}

// ExtractOverlapping dirties every live block whose key range overlaps any
// of spans and returns their live entries in user-key order. Preemptive
// compaction uses this to carve blocks out of an intermediate level before
// pushing their contents deeper (§3.4).
func (t *Table) ExtractOverlapping(spans []keys.Range, op device.Op) ([]Entry, MergeStats, error) {
	var st MergeStats
	t.mu.RLock()
	var dirty []int
	var victims []BlockMeta
	for _, li := range t.live {
		b := t.blocks[li]
		r := b.Range()
		for _, s := range spans {
			if r.Overlaps(s) {
				dirty = append(dirty, li)
				victims = append(victims, b)
				break
			}
		}
	}
	t.mu.RUnlock()
	if len(dirty) == 0 {
		return nil, st, nil
	}
	var out []Entry
	for _, bm := range victims {
		es, err := t.ReadBlockEntries(bm, op)
		if err != nil {
			return nil, st, err
		}
		out = append(out, es...)
		st.EntriesRead += len(es)
		st.BytesRead += int64(bm.Handle.Size)
	}
	st.BlocksDirtied = len(dirty)
	return out, st, t.appendMerge(nil, dirty, op)
}

// MergeSorted merges two runs sorted by user key; on collision the entry
// with the larger sequence number wins. Tombstones are elided when
// dropTombstones is set (bottom-level merges).
func MergeSorted(old, new []Entry, dropTombstones bool) []Entry {
	return mergeEntries(old, new, dropTombstones)
}

// mergeEntries merges two sorted runs by user key; on collision the entry
// with the larger sequence wins. Tombstones are elided when dropTombstones.
func mergeEntries(old, new []Entry, dropTombstones bool) []Entry {
	out := make([]Entry, 0, len(old)+len(new))
	i, j := 0, 0
	emit := func(e Entry) {
		if dropTombstones && e.Key.Kind == keys.KindDelete {
			return
		}
		out = append(out, e)
	}
	for i < len(old) && j < len(new) {
		c := bytes.Compare(old[i].Key.User, new[j].Key.User)
		switch {
		case c < 0:
			emit(old[i])
			i++
		case c > 0:
			emit(new[j])
			j++
		default:
			if old[i].Key.Seq > new[j].Key.Seq {
				emit(old[i])
			} else {
				emit(new[j])
			}
			i++
			j++
		}
	}
	for ; i < len(old); i++ {
		emit(old[i])
	}
	for ; j < len(new); j++ {
		emit(new[j])
	}
	return out
}

// Rewrite performs a full compaction of the table in place: live entries are
// read, the file reset, and everything rewritten as clean blocks. Reclaims
// all stale space (§3.4's full-compaction path). The generation bump makes
// concurrent lock-free readers retry instead of consuming recycled offsets.
//
// Rewrite is NOT crash-safe: the truncate durably destroys the old image
// before the new one syncs. The LSM's full-compaction path therefore swaps
// in a freshly built generation file instead (lsm.MaybeCompact); Rewrite
// remains for callers that manage crash atomicity themselves.
func (t *Table) Rewrite(op device.Op) error {
	entries, err := t.AllEntries(op)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.blocks = nil
	t.live = nil
	t.stale = 0
	t.idxBytes = 0
	t.gen++
	if err := t.f.Truncate(0); err != nil {
		t.mu.Unlock()
		return err
	}
	t.mu.Unlock()
	return t.appendMerge(entries, nil, op)
}

// AllEntries reads every live entry in user-key order.
func (t *Table) AllEntries(op device.Op) ([]Entry, error) {
	metas := t.LiveBlockMetas()
	var out []Entry
	for _, bm := range metas {
		es, err := t.ReadBlockEntries(bm, op)
		if err != nil {
			return nil, err
		}
		out = append(out, es...)
	}
	// Blocks are disjoint and sorted, so out is already sorted; assert in
	// debug-style by a cheap adjacent check only when small.
	if len(out) < 1<<12 && !sort.SliceIsSorted(out, func(a, b int) bool {
		return bytes.Compare(out[a].Key.User, out[b].Key.User) < 0
	}) {
		return nil, fmt.Errorf("semisst: %q live blocks out of order", t.f.Name())
	}
	return out, nil
}

// Iter iterates live entries in user-key order, streaming one block at a
// time (used by scans and full compactions feeding deeper levels). If a
// full compaction rewrites the table mid-scan, the iterator transparently
// refreshes its block snapshot and resumes after the last key it returned.
type Iter struct {
	t       *Table
	op      device.Op
	metas   []BlockMeta
	gen     uint64
	bi      int
	cur     *block.Iter
	lastKey []byte
	err     error
}

// NewIter returns an iterator over the table's live entries.
func (t *Table) NewIter(op device.Op) *Iter {
	t.mu.RLock()
	gen := t.gen
	t.mu.RUnlock()
	return &Iter{t: t, op: op, metas: t.LiveBlockMetas(), gen: gen, bi: -1}
}

func (it *Iter) loadBlock(i int) bool {
	it.t.mu.RLock()
	gen := it.t.gen
	it.t.mu.RUnlock()
	if gen != it.gen {
		// The table was rewritten under us: refresh the snapshot and
		// resume just past the last key we returned.
		it.gen = gen
		it.metas = it.t.LiveBlockMetas()
		if it.lastKey != nil {
			resume := keys.Successor(it.lastKey)
			it.seekLocked(resume)
			return it.cur != nil
		}
		i = 0
	}
	if i >= len(it.metas) {
		it.cur = nil
		return false
	}
	data, err := it.t.readBlockData(it.gen, &it.metas[i], it.op)
	if err != nil {
		it.err, it.cur = err, nil
		return false
	}
	b, err := block.NewIter(data)
	if err != nil {
		it.err, it.cur = err, nil
		return false
	}
	it.bi, it.cur = i, b
	return true
}

// seekLocked positions at the first entry >= user within the current meta
// snapshot (no generation re-check; loadBlock handles that).
func (it *Iter) seekLocked(user []byte) {
	lo, hi := 0, len(it.metas)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(it.metas[mid].Last, user) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(it.metas) {
		it.cur = nil
		return
	}
	data, err := it.t.readBlockData(it.gen, &it.metas[lo], it.op)
	if err != nil {
		it.err, it.cur = err, nil
		return
	}
	b, err := block.NewIter(data)
	if err != nil {
		it.err, it.cur = err, nil
		return
	}
	it.bi, it.cur = lo, b
	it.cur.SeekGE(keys.MakeSearchKey(user, keys.MaxSeq))
	it.skipExhausted()
}

// First positions at the first live entry.
func (it *Iter) First() {
	if it.loadBlock(0) {
		it.cur.First()
		it.skipExhausted()
	}
}

// SeekGE positions at the first entry with user key >= user.
func (it *Iter) SeekGE(user []byte) {
	lo, hi := 0, len(it.metas)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(it.metas[mid].Last, user) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if !it.loadBlock(lo) {
		return
	}
	it.cur.SeekGE(keys.MakeSearchKey(user, keys.MaxSeq))
	it.skipExhausted()
}

// Next advances the iterator.
func (it *Iter) Next() {
	if it.cur == nil {
		return
	}
	it.cur.Next()
	it.skipExhausted()
}

func (it *Iter) skipExhausted() {
	for it.cur != nil && !it.cur.Valid() {
		if err := it.cur.Err(); err != nil {
			it.err, it.cur = err, nil
			return
		}
		if !it.loadBlock(it.bi + 1) {
			return
		}
		it.cur.First()
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iter) Valid() bool {
	if it.cur != nil && it.cur.Valid() {
		it.lastKey = append(it.lastKey[:0], it.cur.Key().User...)
		return true
	}
	return false
}

// Key returns the current internal key.
func (it *Iter) Key() keys.InternalKey { return it.cur.Key() }

// Value returns the current value.
func (it *Iter) Value() []byte { return it.cur.Value() }

// Err returns the first error encountered.
func (it *Iter) Err() error { return it.err }
