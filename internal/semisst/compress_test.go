package semisst

import (
	"fmt"
	"strings"
	"testing"

	"hyperdb/internal/compress"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/stats"
)

// compressibleEntries builds sorted entries with padded values that an LZ
// codec shrinks well, YCSB-style.
func compressibleEntries(n int, seqBase uint64) []Entry {
	out := make([]Entry, 0, n)
	pad := strings.Repeat("field0=webpage-content-padding-0123456789;", 4)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		out = append(out, entry(k, seqBase+uint64(i), pad+k))
	}
	return out
}

func TestCompressedBuildAndGet(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("c1")
	var raw, stored stats.Counter
	opts := Options{Codec: compress.LZ, RawBytes: &raw, StoredBytes: &stored}
	tbl, err := Build(f, opts, compressibleEntries(500, 1), device.Bg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v, kind, found, err := tbl.Get([]byte(k), keys.MaxSeq, device.Fg)
		if err != nil || !found || kind != keys.KindSet {
			t.Fatalf("get %s: %v %v %v", k, kind, found, err)
		}
		if !strings.HasSuffix(string(v), k) {
			t.Fatalf("get %s: wrong value", k)
		}
	}
	if raw.Load() == 0 || stored.Load() == 0 {
		t.Fatalf("compression counters not fed: raw=%d stored=%d", raw.Load(), stored.Load())
	}
	if float64(raw.Load())/float64(stored.Load()) < 1.5 {
		t.Fatalf("weak compression on padded values: raw=%d stored=%d", raw.Load(), stored.Load())
	}
}

func TestCompressedReopen(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("c2")
	opts := Options{Codec: compress.LZ}
	if _, err := Build(f, opts, compressibleEntries(300, 1), device.Bg); err != nil {
		t.Fatal(err)
	}
	// Reopen WITHOUT the codec option: block tags live in the index, so
	// reads must not depend on the writer-side setting.
	tbl, err := Open(f, Options{}, device.Bg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumEntries() != 300 {
		t.Fatalf("entries after reopen = %d", tbl.NumEntries())
	}
	for _, i := range []int{0, 150, 299} {
		k := fmt.Sprintf("key-%05d", i)
		if _, _, found, err := tbl.Get([]byte(k), keys.MaxSeq, device.Fg); err != nil || !found {
			t.Fatalf("get %s after reopen: found=%v err=%v", k, found, err)
		}
	}
}

// TestMixedFormatMerge proves mixed-format reads: a table built raw gains
// compressed blocks from a later merge, and both kinds serve lookups.
func TestMixedFormatMerge(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("c3")
	tbl, err := Build(f, Options{}, compressibleEntries(200, 1), device.Bg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the codec on (as compaction does when the policy changes) and
	// merge a disjoint run: old blocks stay raw, new blocks are tagged.
	tbl.opts.Codec = compress.LZ
	var newer []Entry
	pad := strings.Repeat("tail-padding-tail-padding-", 8)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("zkey-%05d", i)
		newer = append(newer, entry(k, 1000+uint64(i), pad+k))
	}
	if _, err := tbl.Merge(newer, false, device.Bg); err != nil {
		t.Fatal(err)
	}
	var sawRaw, sawTagged bool
	for _, bm := range tbl.LiveBlockMetas() {
		if bm.Tagged {
			sawTagged = true
		} else {
			sawRaw = true
		}
	}
	if !sawRaw || !sawTagged {
		t.Fatalf("expected mixed formats, raw=%v tagged=%v", sawRaw, sawTagged)
	}
	for _, k := range []string{"key-00000", "key-00199", "zkey-00000", "zkey-00199"} {
		if _, _, found, err := tbl.Get([]byte(k), keys.MaxSeq, device.Fg); err != nil || !found {
			t.Fatalf("mixed get %s: found=%v err=%v", k, found, err)
		}
	}
	// Reopen and re-check both formats decode from the persisted index.
	re, err := Open(f, Options{}, device.Bg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"key-00100", "zkey-00100"} {
		if _, _, found, err := re.Get([]byte(k), keys.MaxSeq, device.Fg); err != nil || !found {
			t.Fatalf("reopened mixed get %s: found=%v err=%v", k, found, err)
		}
	}
}

// TestTornCompressedBlockFailsClosed corrupts a compressed block's stored
// bytes in place; reads must error, not return garbage or panic.
func TestTornCompressedBlockFailsClosed(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("c4")
	tbl, err := Build(f, Options{Codec: compress.LZ}, compressibleEntries(100, 1), device.Bg)
	if err != nil {
		t.Fatal(err)
	}
	bm := tbl.LiveBlockMetas()[0]
	if !bm.Tagged {
		t.Fatalf("block not tagged")
	}
	// Flip bytes in the middle of the stored payload (past the tag and
	// header) so framing survives but the content is wrong.
	mid := int64(bm.Handle.Offset) + int64(bm.Handle.Size)/2
	junk := []byte{0xde, 0xad, 0xbe, 0xef}
	if err := f.WriteAt(junk, mid, device.Fg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < bm.Entries; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v, _, found, err := tbl.Get([]byte(k), keys.MaxSeq, device.Fg)
		if err != nil {
			return // failed closed: good
		}
		if found && !strings.HasSuffix(string(v), k) {
			t.Fatalf("corrupted block served garbage for %s", k)
		}
	}
	t.Fatalf("no read of the corrupted block reported an error")
}
