package semisst

import (
	"bytes"
	"fmt"
)

// CheckInvariants validates the table's structural invariants: live blocks
// strictly ordered and pairwise disjoint by key range, per-block key lists
// matching the recorded bounds, and stale accounting consistent. Tests and
// the harness call this after mutation storms.
func (t *Table) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var prevLast []byte
	for i, li := range t.live {
		b := &t.blocks[li]
		if !b.Valid {
			return fmt.Errorf("semisst: live[%d] points at invalid block", i)
		}
		if len(b.Keys) != b.Entries {
			return fmt.Errorf("semisst: block %d keys=%d entries=%d", li, len(b.Keys), b.Entries)
		}
		if b.Entries > 0 {
			if !bytes.Equal(b.Keys[0], b.First) || !bytes.Equal(b.Keys[len(b.Keys)-1], b.Last) {
				return fmt.Errorf("semisst: block %d bounds %q..%q disagree with keys %q..%q",
					li, b.First, b.Last, b.Keys[0], b.Keys[len(b.Keys)-1])
			}
		}
		for j := 1; j < len(b.Keys); j++ {
			if bytes.Compare(b.Keys[j-1], b.Keys[j]) >= 0 {
				return fmt.Errorf("semisst: block %d keys out of order at %d", li, j)
			}
		}
		if prevLast != nil && bytes.Compare(prevLast, b.First) >= 0 {
			return fmt.Errorf("semisst: live blocks overlap: prev last %q >= first %q (block %d)",
				prevLast, b.First, li)
		}
		prevLast = b.Last
	}
	var stale int64
	for i := range t.blocks {
		if !t.blocks[i].Valid {
			stale += int64(t.blocks[i].Handle.Size)
		}
	}
	if stale != t.stale {
		return fmt.Errorf("semisst: stale accounting %d != computed %d", t.stale, stale)
	}
	return nil
}
