package semisst

import (
	"fmt"
	"testing"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

func BenchmarkBuild(b *testing.B) {
	dev := newDev()
	entries := sortedEntries(10_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _ := dev.Create(fmt.Sprintf("b%d", i))
		if _, err := Build(f, Options{}, entries, device.Bg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	dev := newDev()
	f, _ := dev.Create("g")
	tbl, _ := Build(f, Options{}, sortedEntries(10_000, 1), device.Bg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := fmt.Sprintf("key-%05d", i%10_000)
		if _, _, found, err := tbl.Get([]byte(k), keys.MaxSeq, device.Fg); err != nil || !found {
			b.Fatal(err)
		}
	}
}

func BenchmarkMergeNarrow(b *testing.B) {
	dev := newDev()
	f, _ := dev.Create("m")
	tbl, _ := Build(f, Options{}, sortedEntries(10_000, 1), device.Bg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := fmt.Sprintf("key-%05d", (i*37)%10_000)
		if _, err := tbl.Merge([]Entry{entry(k, uint64(100_000+i), "u")}, false, device.Bg); err != nil {
			b.Fatal(err)
		}
		if tbl.DirtyRatio() > 0.5 {
			if err := tbl.Rewrite(device.Bg); err != nil {
				b.Fatal(err)
			}
		}
	}
}
