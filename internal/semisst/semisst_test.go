package semisst

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"hyperdb/internal/device"
	"hyperdb/internal/keys"
)

func newDev() *device.Device {
	return device.New(device.UnthrottledProfile("t", 0))
}

func entry(k string, seq uint64, v string) Entry {
	return Entry{
		Key:   keys.InternalKey{User: []byte(k), Seq: seq, Kind: keys.KindSet},
		Value: []byte(v),
	}
}

func sortedEntries(n int, seqBase uint64) []Entry {
	out := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%05d", i)
		out = append(out, entry(k, seqBase+uint64(i), "val-"+k))
	}
	return out
}

func TestBuildAndGet(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, err := Build(f, Options{}, sortedEntries(1000, 1), device.Bg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumEntries() != 1000 {
		t.Fatalf("entries = %d", tbl.NumEntries())
	}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%05d", i)
		v, kind, found, err := tbl.Get([]byte(k), keys.MaxSeq, device.Fg)
		if err != nil || !found || kind != keys.KindSet || string(v) != "val-"+k {
			t.Fatalf("get %s: %q %v %v %v", k, v, kind, found, err)
		}
	}
	if _, _, found, _ := tbl.Get([]byte("absent"), keys.MaxSeq, device.Fg); found {
		t.Fatal("phantom")
	}
}

func TestBlocksDisjointAndSorted(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, _ := Build(f, Options{}, sortedEntries(2000, 1), device.Bg)
	metas := tbl.LiveBlockMetas()
	if len(metas) < 2 {
		t.Fatalf("expected multiple blocks, got %d", len(metas))
	}
	for i := 1; i < len(metas); i++ {
		if bytes.Compare(metas[i-1].Last, metas[i].First) >= 0 {
			t.Fatalf("blocks %d/%d overlap: %q vs %q", i-1, i, metas[i-1].Last, metas[i].First)
		}
	}
}

func TestMergeDirtiesOnlyOverlappingBlocks(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, _ := Build(f, Options{}, sortedEntries(2000, 1), device.Bg)
	blocksBefore := tbl.NumLiveBlocks()

	// Update a narrow range of keys: only the covering blocks go dirty.
	incoming := []Entry{
		entry("key-00500", 9001, "NEW-500"),
		entry("key-00501", 9002, "NEW-501"),
	}
	st, err := tbl.Merge(incoming, false, device.Bg)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksDirtied == 0 || st.BlocksDirtied > 2 {
		t.Fatalf("dirtied %d blocks for a 2-key update", st.BlocksDirtied)
	}
	if tbl.StaleBytes() == 0 {
		t.Fatal("no stale bytes after merge")
	}
	if got := tbl.NumLiveBlocks(); got < blocksBefore-2 || got > blocksBefore+1 {
		t.Fatalf("live blocks %d -> %d", blocksBefore, got)
	}
	// All data still correct, updated keys serve new values.
	v, _, found, _ := tbl.Get([]byte("key-00500"), keys.MaxSeq, device.Fg)
	if !found || string(v) != "NEW-500" {
		t.Fatalf("updated key: %q %v", v, found)
	}
	v, _, found, _ = tbl.Get([]byte("key-00499"), keys.MaxSeq, device.Fg)
	if !found || string(v) != "val-key-00499" {
		t.Fatalf("survivor from dirty block: %q %v", v, found)
	}
	v, _, found, _ = tbl.Get([]byte("key-01500"), keys.MaxSeq, device.Fg)
	if !found || string(v) != "val-key-01500" {
		t.Fatalf("clean-block key: %q %v", v, found)
	}
	if tbl.NumEntries() != 2000 {
		t.Fatalf("entries after merge = %d", tbl.NumEntries())
	}
}

func TestMergeNonOverlappingAppends(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, _ := Build(f, Options{}, sortedEntries(100, 1), device.Bg)
	// Keys entirely after the existing range: nothing dirties.
	var incoming []Entry
	for i := 0; i < 50; i++ {
		incoming = append(incoming, entry(fmt.Sprintf("zzz-%03d", i), uint64(1000+i), "z"))
	}
	st, err := tbl.Merge(incoming, false, device.Bg)
	if err != nil {
		t.Fatal(err)
	}
	if st.BlocksDirtied != 0 {
		t.Fatalf("non-overlapping merge dirtied %d blocks", st.BlocksDirtied)
	}
	if tbl.NumEntries() != 150 {
		t.Fatalf("entries = %d", tbl.NumEntries())
	}
	if tbl.StaleBytes() != 0 {
		t.Fatal("stale bytes on clean append")
	}
}

func TestTombstonesDropAtBottom(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, _ := Build(f, Options{}, sortedEntries(100, 1), device.Bg)
	del := Entry{Key: keys.InternalKey{User: []byte("key-00050"), Seq: 999, Kind: keys.KindDelete}}
	if _, err := tbl.Merge([]Entry{del}, true, device.Bg); err != nil {
		t.Fatal(err)
	}
	if _, _, found, _ := tbl.Get([]byte("key-00050"), keys.MaxSeq, device.Fg); found {
		t.Fatal("bottom-level merge should drop key entirely")
	}
	if tbl.NumEntries() != 99 {
		t.Fatalf("entries = %d", tbl.NumEntries())
	}
}

func TestTombstonesKeptAtMiddle(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, _ := Build(f, Options{}, sortedEntries(100, 1), device.Bg)
	del := Entry{Key: keys.InternalKey{User: []byte("key-00050"), Seq: 999, Kind: keys.KindDelete}}
	if _, err := tbl.Merge([]Entry{del}, false, device.Bg); err != nil {
		t.Fatal(err)
	}
	_, kind, found, _ := tbl.Get([]byte("key-00050"), keys.MaxSeq, device.Fg)
	if !found || kind != keys.KindDelete {
		t.Fatalf("mid-level merge must keep tombstone: %v %v", kind, found)
	}
}

func TestDirtyRatioAndRewrite(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, _ := Build(f, Options{}, sortedEntries(1000, 1), device.Bg)
	// Update everything: all blocks dirty.
	updates := make([]Entry, 0, 1000)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%05d", i)
		updates = append(updates, entry(k, uint64(5000+i), "u-"+k))
	}
	if _, err := tbl.Merge(updates, false, device.Bg); err != nil {
		t.Fatal(err)
	}
	if r := tbl.DirtyRatio(); r < 0.4 {
		t.Fatalf("dirty ratio = %f after full overwrite", r)
	}
	fileBefore := tbl.FileBytes()
	if err := tbl.Rewrite(device.Bg); err != nil {
		t.Fatal(err)
	}
	if tbl.DirtyRatio() != 0 || tbl.StaleBytes() != 0 {
		t.Fatal("rewrite left stale data")
	}
	if tbl.FileBytes() >= fileBefore {
		t.Fatalf("rewrite did not shrink file: %d -> %d", fileBefore, tbl.FileBytes())
	}
	for i := 0; i < 1000; i += 111 {
		k := fmt.Sprintf("key-%05d", i)
		v, _, found, _ := tbl.Get([]byte(k), keys.MaxSeq, device.Fg)
		if !found || string(v) != "u-"+k {
			t.Fatalf("after rewrite %s: %q %v", k, v, found)
		}
	}
}

func TestExtractOverlapping(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, _ := Build(f, Options{}, sortedEntries(1000, 1), device.Bg)
	span := keys.Range{Lo: []byte("key-00300"), Hi: []byte("key-00400")}
	extracted, st, err := tbl.ExtractOverlapping([]keys.Range{span}, device.Bg)
	if err != nil {
		t.Fatal(err)
	}
	if len(extracted) == 0 || st.BlocksDirtied == 0 {
		t.Fatalf("extracted %d entries, %d blocks", len(extracted), st.BlocksDirtied)
	}
	if !sort.SliceIsSorted(extracted, func(a, b int) bool {
		return bytes.Compare(extracted[a].Key.User, extracted[b].Key.User) < 0
	}) {
		t.Fatal("extracted entries out of order")
	}
	// Every key in the span must now be gone from the table.
	for _, e := range extracted {
		if span.Contains(e.Key.User) {
			if _, _, found, _ := tbl.Get(e.Key.User, keys.MaxSeq, device.Fg); found {
				t.Fatalf("extracted key %q still readable", e.Key.User)
			}
		}
	}
	// Idempotent when nothing overlaps.
	extracted2, st2, err := tbl.ExtractOverlapping([]keys.Range{span}, device.Bg)
	if err != nil || len(extracted2) != 0 || st2.BlocksDirtied != 0 {
		t.Fatalf("second extract: %d entries, %d blocks, err=%v", len(extracted2), st2.BlocksDirtied, err)
	}
}

func TestOpenReload(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, _ := Build(f, Options{}, sortedEntries(500, 1), device.Bg)
	tbl.Merge([]Entry{entry("key-00100", 9000, "updated")}, false, device.Bg)

	re, err := Open(f, Options{}, device.Fg)
	if err != nil {
		t.Fatal(err)
	}
	if re.NumEntries() != tbl.NumEntries() {
		t.Fatalf("reloaded entries %d != %d", re.NumEntries(), tbl.NumEntries())
	}
	if re.StaleBytes() != tbl.StaleBytes() {
		t.Fatalf("reloaded stale %d != %d", re.StaleBytes(), tbl.StaleBytes())
	}
	v, _, found, _ := re.Get([]byte("key-00100"), keys.MaxSeq, device.Fg)
	if !found || string(v) != "updated" {
		t.Fatalf("reloaded get: %q %v", v, found)
	}
	if re.MaxSeq() != 9000 {
		t.Fatalf("maxSeq = %d", re.MaxSeq())
	}
}

func TestIterSortedAndSeek(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, _ := Build(f, Options{}, sortedEntries(800, 1), device.Bg)
	// Appended blocks keep global iteration order because live blocks stay
	// disjoint.
	tbl.Merge([]Entry{entry("key-00400", 9000, "mid-update")}, false, device.Bg)

	it := tbl.NewIter(device.Fg)
	n := 0
	prev := ""
	for it.First(); it.Valid(); it.Next() {
		k := string(it.Key().User)
		if k <= prev {
			t.Fatalf("iteration out of order: %q after %q", k, prev)
		}
		prev = k
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if n != 800 {
		t.Fatalf("iterated %d", n)
	}
	it.SeekGE([]byte("key-00400"))
	if !it.Valid() || string(it.Key().User) != "key-00400" || string(it.Value()) != "mid-update" {
		t.Fatalf("seek after merge: %q=%q", it.Key().User, it.Value())
	}
}

func TestMetaBackupMirror(t *testing.T) {
	sata := newDev()
	nvme := device.New(device.UnthrottledProfile("nvme", 0))
	f, _ := sata.Create("s1")
	tbl, err := Build(f, Options{MetaBackup: nvme}, sortedEntries(300, 1), device.Bg)
	if err != nil {
		t.Fatal(err)
	}
	if nvme.Counters().WriteBytes.Load() == 0 {
		t.Fatal("mirror got no writes")
	}
	sataReadsBefore := sata.Counters().ReadBytes.Load()
	nvmeReadsBefore := nvme.Counters().ReadBytes.Load()
	tbl.ChargeIndexRead(device.Bg)
	if sata.Counters().ReadBytes.Load() != sataReadsBefore {
		t.Fatal("index read charged to SATA despite mirror")
	}
	if nvme.Counters().ReadBytes.Load() == nvmeReadsBefore {
		t.Fatal("index read not charged to NVMe mirror")
	}
	tbl.Close()
	if len(nvme.List()) != 0 {
		t.Fatalf("mirror file leaked: %v", nvme.List())
	}
}

func TestMergeSortedHelper(t *testing.T) {
	old := []Entry{entry("a", 1, "a1"), entry("c", 1, "c1")}
	new_ := []Entry{entry("b", 2, "b2"), entry("c", 2, "c2")}
	got := MergeSorted(old, new_, false)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	if string(got[2].Value) != "c2" {
		t.Fatalf("collision kept old value %q", got[2].Value)
	}
	// Tombstone dropping.
	del := []Entry{{Key: keys.InternalKey{User: []byte("a"), Seq: 5, Kind: keys.KindDelete}}}
	got = MergeSorted(old, del, true)
	for _, e := range got {
		if string(e.Key.User) == "a" {
			t.Fatal("tombstone survived dropTombstones")
		}
	}
}

func TestRandomizedMergeModel(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	ref := map[string]string{}
	base := sortedEntries(500, 1)
	for _, e := range base {
		ref[string(e.Key.User)] = string(e.Value)
	}
	tbl, _ := Build(f, Options{}, base, device.Bg)
	rng := rand.New(rand.NewSource(21))
	seq := uint64(1000)
	for round := 0; round < 20; round++ {
		n := 1 + rng.Intn(50)
		batch := map[string]string{}
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key-%05d", rng.Intn(700)) // some new, some old
			seq++
			batch[k] = fmt.Sprintf("r%d-%d", round, i)
		}
		var ks []string
		for k := range batch {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		var entries []Entry
		for _, k := range ks {
			entries = append(entries, entry(k, seq, batch[k]))
			ref[k] = batch[k]
		}
		if _, err := tbl.Merge(entries, false, device.Bg); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	for k, want := range ref {
		v, _, found, err := tbl.Get([]byte(k), keys.MaxSeq, device.Fg)
		if err != nil || !found || string(v) != want {
			t.Fatalf("%s: got %q want %q (found=%v err=%v)", k, v, want, found, err)
		}
	}
	if tbl.NumEntries() != len(ref) {
		t.Fatalf("entries = %d, ref = %d", tbl.NumEntries(), len(ref))
	}
}

func TestIterSurvivesRewrite(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, _ := Build(f, Options{}, sortedEntries(1000, 1), device.Bg)
	// Dirty the table so Rewrite has something to reclaim.
	tbl.Merge([]Entry{entry("key-00100", 5000, "x")}, false, device.Bg)

	it := tbl.NewIter(device.Fg)
	it.First()
	seen := 0
	var prev []byte
	for ; it.Valid(); it.Next() {
		seen++
		if prev != nil && bytes.Compare(prev, it.Key().User) >= 0 {
			t.Fatalf("order violated after %d entries", seen)
		}
		prev = append(prev[:0], it.Key().User...)
		if seen == 300 {
			// Full compaction recycles every offset mid-scan.
			if err := tbl.Rewrite(device.Bg); err != nil {
				t.Fatal(err)
			}
		}
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	// The iterator refreshed its snapshot and resumed past the last key; it
	// must see every remaining key exactly once.
	if seen != 1000 {
		t.Fatalf("saw %d entries across a rewrite, want 1000", seen)
	}
}

func TestGetRetriesAcrossRewrite(t *testing.T) {
	dev := newDev()
	f, _ := dev.Create("s1")
	tbl, _ := Build(f, Options{}, sortedEntries(2000, 1), device.Bg)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			k := fmt.Sprintf("key-%05d", i%2000)
			v, _, found, err := tbl.Get([]byte(k), keys.MaxSeq, device.Fg)
			if err != nil {
				done <- fmt.Errorf("get %s: %w", k, err)
				return
			}
			if found && !bytes.HasPrefix(v, []byte("val-")) && !bytes.HasPrefix(v, []byte("re-")) {
				done <- fmt.Errorf("get %s returned garbage %q", k, v)
				return
			}
		}
	}()
	for round := 0; round < 30; round++ {
		tbl.Merge([]Entry{entry(fmt.Sprintf("key-%05d", round*37), uint64(10000+round), fmt.Sprintf("re-%d", round))}, false, device.Bg)
		if round%5 == 4 {
			if err := tbl.Rewrite(device.Bg); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
