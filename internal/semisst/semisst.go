// Package semisst implements the semi-sorted string table of §3.2: entries
// are sorted inside each data block, blocks may be appended after the file
// is persisted, and the index block records every block's offset, key range,
// validity, bloom filter and a prefix-compressed list of the block's live
// keys. A merge never rewrites the whole file: superseded blocks are marked
// dirty (dead space, reclaimed by a later full compaction); survivors stay
// clean and in place; merged entries form fresh blocks appended at the tail
// together with a new index block.
//
// The live blocks of a table always cover pairwise-disjoint key ranges, so a
// point lookup touches at most one data block.
//
// Following §3.1, the index can be mirrored to the performance tier
// (Options.MetaBackup): compaction workers then read keys from the NVMe
// mirror instead of the capacity tier — the "low-cost index lookup" the
// paper credits for cheap overlap scoring.
package semisst

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"hyperdb/internal/block"
	"hyperdb/internal/bloom"
	"hyperdb/internal/cache"
	"hyperdb/internal/compress"
	"hyperdb/internal/device"
	"hyperdb/internal/keys"
	"hyperdb/internal/sstable"
	"hyperdb/internal/stats"
)

// maxRawBlock caps the decoded size a compressed block may declare; it
// bounds the allocation a corrupted rawLen can trigger. Values and blocks
// are bounded far below the wire's 16 MiB frame cap.
const maxRawBlock = 16 << 20

// Magic identifies a semi-SSTable footer.
const Magic = 0x5e3915ab1e5e3900

// footerSize is the fixed footer length: the index handle varints padded to
// footerSize-12 bytes, a crc32 of that prefix, then the magic. The checksum
// lets crash recovery distinguish a real footer from data bytes that happen
// to end in the magic while scanning backward for the newest persisted
// index.
const footerSize = 32

// encodeFooter serialises a footer pointing at the index block.
func encodeFooter(h sstable.Handle) []byte {
	footer := sstable.EncodeHandle(nil, h)
	for len(footer) < footerSize-12 {
		footer = append(footer, 0)
	}
	var tail [12]byte
	binary.LittleEndian.PutUint32(tail[0:], crc32.ChecksumIEEE(footer))
	binary.LittleEndian.PutUint64(tail[4:], Magic)
	return append(footer, tail[:]...)
}

// parseFooter validates magic and checksum and returns the index handle.
func parseFooter(footer []byte) (sstable.Handle, bool) {
	if len(footer) != footerSize {
		return sstable.Handle{}, false
	}
	if binary.LittleEndian.Uint64(footer[footerSize-8:]) != Magic {
		return sstable.Handle{}, false
	}
	if binary.LittleEndian.Uint32(footer[footerSize-12:]) != crc32.ChecksumIEEE(footer[:footerSize-12]) {
		return sstable.Handle{}, false
	}
	h, err := sstable.DecodeHandle(footer[:footerSize-12])
	if err != nil {
		return sstable.Handle{}, false
	}
	return h, true
}

// BlockMeta describes one data block of a semi-SSTable.
type BlockMeta struct {
	Handle  sstable.Handle
	First   []byte // first user key in the block
	Last    []byte // last user key in the block
	Entries int
	Valid   bool
	// Tagged marks a block stored as a self-describing compress payload
	// (index flags byte 2). Legacy blocks (flags byte 1) hold raw block
	// bytes with no tag, so tables written before compression existed —
	// or with the codec off — read back unchanged.
	Tagged bool
	Filter *bloom.Filter
	// Keys holds the block's live user keys in sorted order. It mirrors the
	// persisted index content so compaction never reads data blocks to
	// discover overlap (§3.4).
	Keys [][]byte
	// enc caches the block's serialised index segment; blocks are immutable
	// once written, so each merge's index rewrite reuses it instead of
	// re-encoding every block in the table.
	enc []byte
}

// Range returns the closed-open user-key range of the block.
func (b *BlockMeta) Range() keys.Range {
	return keys.Range{Lo: b.First, Hi: keys.Successor(b.Last)}
}

// Options configures semi-SSTable construction and merging.
type Options struct {
	// BlockSize targets one device page per data block (default 4096).
	BlockSize int
	// BloomBitsPerKey sizes per-block filters (default 10).
	BloomBitsPerKey int
	// PageCache, if set, caches data blocks across reads.
	PageCache cache.BlockCache
	// MetaBackup, if set, mirrors the index block to this (performance-tier)
	// device so index reads are charged there instead of the capacity tier.
	MetaBackup *device.Device
	// Codec compresses freshly written data blocks. None (the zero value)
	// keeps the legacy untagged format byte-for-byte. Reads are
	// mixed-format regardless: each block's index flags say how it is
	// stored, so a table built raw stays readable after the codec turns
	// on and compaction rewrites it transparently.
	Codec compress.Codec
	// RawBytes/StoredBytes, when set, accumulate the uncompressed vs
	// on-device sizes of every data block this table appends — the
	// compression-ratio feed for the level traffic stats.
	RawBytes    *stats.Counter
	StoredBytes *stats.Counter
}

func (o *Options) fill() {
	if o.BlockSize <= 0 {
		o.BlockSize = 4096
	}
	if o.BloomBitsPerKey <= 0 {
		o.BloomBitsPerKey = 10
	}
}

// Entry is one key-value pair fed into a build or merge.
type Entry struct {
	Key   keys.InternalKey
	Value []byte
}

// Table is an open semi-SSTable.
type Table struct {
	mu       sync.RWMutex
	f        *device.File
	metaF    *device.File // index mirror on the performance tier, may be nil
	opts     Options
	blocks   []BlockMeta // every block ever written, in file order
	live     []int       // indices of valid blocks, sorted by First key
	stale    int64       // bytes in dirty data blocks
	maxSeq   uint64
	idxBytes int64 // size of the current persisted index block
	// gen increments whenever existing file offsets are invalidated (a full
	// compaction rewrites the file in place). It namespaces page-cache keys
	// and lets lock-free readers detect that a snapshot of block metadata
	// went stale mid-read.
	gen uint64
}

// Build creates a new semi-SSTable in f from sorted entries (one version per
// user key). I/O is charged with op; flush/compaction jobs pass device.Bg.
func Build(f *device.File, opts Options, entries []Entry, op device.Op) (*Table, error) {
	opts.fill()
	t := &Table{f: f, opts: opts}
	if err := t.openMetaBackup(); err != nil {
		return nil, err
	}
	if err := t.appendMerge(entries, nil, op); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *Table) openMetaBackup() error {
	if t.opts.MetaBackup == nil {
		return nil
	}
	name := t.f.Name() + ".idx"
	f, err := t.opts.MetaBackup.Open(name)
	if err != nil {
		f, err = t.opts.MetaBackup.Create(name)
		if err != nil {
			return err
		}
	}
	t.metaF = f
	return nil
}

// Open reloads a semi-SSTable persisted in f. A merge appends new blocks,
// index and footer after the previous index (append-after-persist), so after
// a clean sync the newest footer sits at EOF. A crash can leave a torn tail
// — a page prefix of an unfinished merge — in which case Open scans backward
// for the newest valid (checksummed) footer and truncates the dead tail.
func Open(f *device.File, opts Options, op device.Op) (*Table, error) {
	opts.fill()
	size := f.Size()
	if size < footerSize {
		return nil, fmt.Errorf("semisst: %q too small", f.Name())
	}
	footer := make([]byte, footerSize)
	if _, err := f.ReadAt(footer, size-footerSize, op); err != nil {
		return nil, err
	}
	if idxH, ok := parseFooter(footer); ok {
		idx := make([]byte, idxH.Size)
		if _, err := f.ReadAt(idx, int64(idxH.Offset), op); err != nil {
			return nil, err
		}
		if t, err := openFromIndex(f, opts, idx); err == nil {
			return t, nil
		}
	}
	// Torn tail: read the whole file once and scan backward for the newest
	// offset that ends in a valid footer whose index decodes.
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0, device.Op{Background: op.Background, Sequential: true}); err != nil {
		return nil, err
	}
	for end := size; end >= footerSize; end-- {
		if binary.LittleEndian.Uint64(buf[end-8:end]) != Magic {
			continue
		}
		h, ok := parseFooter(buf[end-footerSize : end])
		if !ok || int64(h.Offset)+int64(h.Size) > end-footerSize {
			continue
		}
		t, err := openFromIndex(f, opts, buf[h.Offset:int64(h.Offset)+int64(h.Size)])
		if err != nil {
			continue
		}
		if end < size {
			if err := f.Truncate(end); err != nil {
				return nil, err
			}
		}
		return t, nil
	}
	return nil, fmt.Errorf("semisst: no valid footer in %q", f.Name())
}

// openFromIndex builds a Table from a decoded index payload.
func openFromIndex(f *device.File, opts Options, idx []byte) (*Table, error) {
	t := &Table{f: f, opts: opts, idxBytes: int64(len(idx))}
	if err := t.decodeIndex(idx); err != nil {
		return nil, err
	}
	if err := t.openMetaBackup(); err != nil {
		return nil, err
	}
	t.recomputeLive()
	return t, nil
}

// File returns the underlying device file.
func (t *Table) File() *device.File { return t.f }

// MaxSeq returns the largest sequence number stored in the table.
func (t *Table) MaxSeq() uint64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.maxSeq
}

// Close releases the index mirror (call when the table is deleted).
func (t *Table) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.metaF != nil {
		t.opts.MetaBackup.Remove(t.metaF.Name())
		t.metaF = nil
	}
}

// recomputeLive rebuilds the sorted live-block index. Caller holds mu.
func (t *Table) recomputeLive() {
	t.live = t.live[:0]
	for i := range t.blocks {
		if t.blocks[i].Valid {
			t.live = append(t.live, i)
		}
	}
	sort.Slice(t.live, func(a, b int) bool {
		return bytes.Compare(t.blocks[t.live[a]].First, t.blocks[t.live[b]].First) < 0
	})
}

// appendMerge marks dirtyIdx blocks invalid, appends entries as fresh blocks
// at the tail, and appends a new index and footer after the previous ones
// (append-after-persist: the old index stays durable until the new tail
// syncs, so a crash at any point leaves a recoverable table — Open falls
// back to the newest valid footer). The superseded index region becomes
// dead space, reclaimed with the dirty blocks by a full compaction. entries
// must be sorted by internal key with one version per user key, and must
// not overlap any block that remains clean.
//
// On error the merge rolls back completely: the unsynced appended tail is
// dropped and block validity restored, so the in-memory table, the durable
// file image, and a retry all agree.
func (t *Table) appendMerge(entries []Entry, dirtyIdx []int, op device.Op) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	var marked []int
	for _, i := range dirtyIdx {
		if i < 0 || i >= len(t.blocks) {
			return fmt.Errorf("semisst: dirty index %d out of range", i)
		}
		if t.blocks[i].Valid {
			t.blocks[i].Valid = false
			t.stale += int64(t.blocks[i].Handle.Size)
			marked = append(marked, i)
		}
	}

	start := t.f.Size()
	nBlocks := len(t.blocks)
	oldIdxBytes := t.idxBytes
	rollback := func(err error) error {
		for _, i := range marked {
			t.blocks[i].Valid = true
			t.stale -= int64(t.blocks[i].Handle.Size)
		}
		t.blocks = t.blocks[:nBlocks]
		t.idxBytes = oldIdxBytes
		// The appended tail was never synced; dropping it is safe.
		t.f.Truncate(start)
		t.recomputeLive()
		return err
	}

	bb := block.NewBuilder(0)
	var blockKeys [][]byte
	flush := func() error {
		if len(blockKeys) == 0 {
			return nil
		}
		content := bb.Finish()
		rawLen := len(content)
		tagged := t.opts.Codec != compress.None
		if tagged {
			content = compress.Encode(nil, t.opts.Codec, content)
		}
		if t.opts.RawBytes != nil {
			t.opts.RawBytes.Add(uint64(rawLen))
		}
		if t.opts.StoredBytes != nil {
			t.opts.StoredBytes.Add(uint64(len(content)))
		}
		off, err := t.f.Append(content)
		if err != nil {
			return err
		}
		// The filter is sized to the block's actual key count so small
		// blocks (large values) don't carry oversized filters in the index.
		filter := bloom.New(len(blockKeys), t.opts.BloomBitsPerKey)
		for _, u := range blockKeys {
			filter.Add(u)
		}
		t.blocks = append(t.blocks, BlockMeta{
			Handle:  sstable.Handle{Offset: uint64(off), Size: uint64(len(content))},
			First:   blockKeys[0],
			Last:    blockKeys[len(blockKeys)-1],
			Entries: len(blockKeys),
			Valid:   true,
			Tagged:  tagged,
			Filter:  filter,
			Keys:    blockKeys,
		})
		bb.Reset()
		blockKeys = nil
		return nil
	}
	for _, e := range entries {
		bb.Add(e.Key, e.Value)
		blockKeys = append(blockKeys, append([]byte(nil), e.Key.User...))
		if e.Key.Seq > t.maxSeq {
			t.maxSeq = e.Key.Seq
		}
		if bb.SizeEstimate() >= t.opts.BlockSize {
			if err := flush(); err != nil {
				return rollback(err)
			}
		}
	}
	if err := flush(); err != nil {
		return rollback(err)
	}

	t.recomputeLive()
	if err := t.writeIndexLocked(op); err != nil {
		return rollback(err)
	}
	op.Sequential = true
	if err := t.f.Sync(op); err != nil {
		return rollback(err)
	}
	// Durable. The superseded index+footer (if any) is now dead file space;
	// it stays out of StaleBytes (a data-block metric) but shows up in
	// FileBytes, so space-amplification pressure still reclaims it via full
	// compaction.
	for _, i := range marked {
		t.blocks[i].Filter = nil
		t.blocks[i].Keys = nil
	}
	return nil
}

// dataEnd returns the offset just past the last data block. Caller holds mu.
func (t *Table) dataEnd() int64 {
	var end int64
	for i := range t.blocks {
		if e := int64(t.blocks[i].Handle.Offset + t.blocks[i].Handle.Size); e > end {
			end = e
		}
	}
	return end
}

// writeIndexLocked appends the index block and footer to the table file and
// mirrors the index to the performance tier. Caller holds mu.
func (t *Table) writeIndexLocked(op device.Op) error {
	idx := t.encodeIndexLocked()
	t.idxBytes = int64(len(idx))
	off, err := t.f.Append(idx)
	if err != nil {
		return err
	}
	footer := encodeFooter(sstable.Handle{Offset: uint64(off), Size: uint64(len(idx))})
	if _, err := t.f.Append(footer); err != nil {
		return err
	}
	if t.metaF != nil {
		// The mirror is a best-effort acceleration (§3.1): when the
		// performance tier has no room for it, drop the mirror and fall
		// back to charging index reads against the capacity tier. Only the
		// planning view is mirrored — block handles, key ranges and
		// validity — because that is all compaction consults; the full
		// index (key lists, filters) stays in the table's own footer.
		mirror := t.encodeMirrorLocked()
		err := t.metaF.Truncate(0)
		if err == nil {
			_, err = t.metaF.Append(mirror)
		}
		if err == nil {
			mop := op
			mop.Sequential = true
			err = t.metaF.Sync(mop)
		}
		if errors.Is(err, device.ErrNoSpace) {
			t.opts.MetaBackup.Remove(t.metaF.Name())
			t.metaF = nil
		} else if err != nil {
			return err
		}
	}
	return nil
}

// encodeIndexLocked serialises maxSeq and per-block metadata, filters and
// prefix-compressed key lists. Caller holds mu.
func (t *Table) encodeIndexLocked() []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	putBytes := func(b []byte) {
		putUv(uint64(len(b)))
		out = append(out, b...)
	}
	putUv(t.maxSeq)
	putUv(uint64(len(t.blocks)))
	for i := range t.blocks {
		b := &t.blocks[i]
		if b.Valid && b.enc == nil {
			b.enc = encodeBlockSegment(b)
		}
		if b.Valid {
			out = append(out, b.enc...)
			continue
		}
		putUv(b.Handle.Offset)
		putUv(b.Handle.Size)
		putUv(uint64(b.Entries))
		out = append(out, 0)
		putBytes(b.First)
		putBytes(b.Last)
	}
	return out
}

// encodeMirrorLocked serialises the compact planning view mirrored to the
// performance tier: per live block, its handle and key bounds. Caller holds
// mu.
func (t *Table) encodeMirrorLocked() []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	putBytes := func(b []byte) {
		putUv(uint64(len(b)))
		out = append(out, b...)
	}
	putUv(uint64(len(t.live)))
	for _, li := range t.live {
		b := &t.blocks[li]
		putUv(b.Handle.Offset)
		putUv(b.Handle.Size)
		putBytes(b.First)
		putBytes(b.Last)
	}
	return out
}

// encodeBlockSegment serialises one valid block's index entry (handle,
// entry count, flags, bounds, filter, key list). The flags byte doubles as
// the validity marker: 0 dirty, 1 valid raw block, 2 valid tagged
// (compress-payload) block. Old indexes never contain 2, so decoding stays
// backward compatible.
func encodeBlockSegment(b *BlockMeta) []byte {
	var out []byte
	var tmp [binary.MaxVarintLen64]byte
	putUv := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		out = append(out, tmp[:n]...)
	}
	putBytes := func(p []byte) {
		putUv(uint64(len(p)))
		out = append(out, p...)
	}
	putUv(b.Handle.Offset)
	putUv(b.Handle.Size)
	putUv(uint64(b.Entries))
	if b.Tagged {
		out = append(out, 2)
	} else {
		out = append(out, 1)
	}
	putBytes(b.First)
	putBytes(b.Last)
	putBytes(b.Filter.Marshal())
	kb := block.NewBuilder(0)
	for _, u := range b.Keys {
		kb.Add(keys.InternalKey{User: u, Seq: 0, Kind: keys.KindSet}, nil)
	}
	putBytes(kb.Finish())
	return out
}

func (t *Table) decodeIndex(idx []byte) error {
	off := 0
	getUv := func() (uint64, error) {
		v, n := binary.Uvarint(idx[off:])
		if n <= 0 {
			return 0, fmt.Errorf("semisst: truncated index")
		}
		off += n
		return v, nil
	}
	getBytes := func() ([]byte, error) {
		n, err := getUv()
		if err != nil {
			return nil, err
		}
		if off+int(n) > len(idx) {
			return nil, fmt.Errorf("semisst: truncated index bytes")
		}
		b := idx[off : off+int(n)]
		off += int(n)
		return append([]byte(nil), b...), nil
	}
	maxSeq, err := getUv()
	if err != nil {
		return err
	}
	t.maxSeq = maxSeq
	nBlocks, err := getUv()
	if err != nil {
		return err
	}
	t.blocks = make([]BlockMeta, 0, nBlocks)
	for i := uint64(0); i < nBlocks; i++ {
		var b BlockMeta
		if b.Handle.Offset, err = getUv(); err != nil {
			return err
		}
		if b.Handle.Size, err = getUv(); err != nil {
			return err
		}
		e, err := getUv()
		if err != nil {
			return err
		}
		b.Entries = int(e)
		if off >= len(idx) {
			return fmt.Errorf("semisst: truncated index validity")
		}
		switch idx[off] {
		case 0:
		case 1:
			b.Valid = true
		case 2:
			b.Valid, b.Tagged = true, true
		default:
			return fmt.Errorf("semisst: bad block flags %d", idx[off])
		}
		off++
		if b.First, err = getBytes(); err != nil {
			return err
		}
		if b.Last, err = getBytes(); err != nil {
			return err
		}
		if !b.Valid {
			t.stale += int64(b.Handle.Size)
			t.blocks = append(t.blocks, b)
			continue
		}
		fdata, err := getBytes()
		if err != nil {
			return err
		}
		if b.Filter, err = bloom.Unmarshal(fdata); err != nil {
			return err
		}
		kdata, err := getBytes()
		if err != nil {
			return err
		}
		kit, err := block.NewIter(kdata)
		if err != nil {
			return err
		}
		for kit.First(); kit.Valid(); kit.Next() {
			b.Keys = append(b.Keys, append([]byte(nil), kit.Key().User...))
		}
		if err := kit.Err(); err != nil {
			return err
		}
		t.blocks = append(t.blocks, b)
	}
	return nil
}
