// Tiering example: watch HyperDB's hotness tracking and cross-tier
// migration live. A skewed read/update stream runs against a deliberately
// small NVMe tier; the program periodically prints where objects live, how
// many zones have been demoted, what the hot zone holds, and how much
// background traffic each tier has absorbed.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hyperdb"
	"hyperdb/internal/stats"
	"hyperdb/internal/ycsb"
)

func main() {
	db, err := hyperdb.Open(hyperdb.Options{
		NVMeCapacity: 8 << 20, // deliberately tiny: forces migration
		SATACapacity: 1 << 30,
		Partitions:   4,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer db.Close()

	const records = 100_000
	const phases = 5
	const opsPerPhase = 40_000

	fmt.Println("== load phase: filling past the NVMe watermark ==")
	rng := rand.New(rand.NewSource(1))
	for i := int64(0); i < records; i++ {
		if err := db.Put(ycsb.Key(i), ycsb.Value(rng, 128)); err != nil {
			log.Fatalf("put: %v", err)
		}
	}
	if err := db.DrainBackground(); err != nil {
		log.Fatalf("drain: %v", err)
	}
	report(db)

	gen := ycsb.NewGenerator(ycsb.WorkloadB, records, 128, 99)
	for phase := 1; phase <= phases; phase++ {
		fmt.Printf("== phase %d: %d zipfian reads/updates (hot set cycles) ==\n", phase, opsPerPhase)
		for i := 0; i < opsPerPhase; i++ {
			op := gen.Next()
			switch op.Type {
			case ycsb.OpRead:
				if _, err := db.Get(op.Key); err != nil && err != hyperdb.ErrNotFound {
					log.Fatalf("get: %v", err)
				}
			default:
				if err := db.Put(op.Key, op.Value); err != nil {
					log.Fatalf("put: %v", err)
				}
			}
		}
		report(db)
	}
}

func report(db *hyperdb.DB) {
	st := db.Stats()
	fmt.Printf("  NVMe: %s/%s used   objects=%d in %d zones (hot-zone evictions: dropped=%d relocated=%d)\n",
		stats.FormatBytes(uint64(st.NVMeUsed)), stats.FormatBytes(uint64(st.NVMeCapacity)),
		st.Zone.Objects, st.Zone.Zones, st.Zone.HotEvictDropped, st.Zone.HotEvictRelocated)
	fmt.Printf("  migrations=%d (objects=%d, page reads=%d)  in-place updates=%d\n",
		st.Zone.Migrations, st.Zone.MigratedObjects, st.Zone.MigrationPageReads, st.Zone.InPlaceUpdates)
	for _, l := range st.Levels {
		if l.Tables == 0 {
			continue
		}
		fmt.Printf("  L%d: %d tables, live=%s, file=%s\n", l.Level, l.Tables,
			stats.FormatBytes(uint64(l.LiveBytes)), stats.FormatBytes(uint64(l.FileBytes)))
	}
	fmt.Printf("  traffic: NVMe{w=%s bgW=%s} SATA{w=%s bgR=%s}  cache hits=%d misses=%d\n\n",
		stats.FormatBytes(st.NVMe.WriteBytes), stats.FormatBytes(st.NVMe.BgWriteBytes),
		stats.FormatBytes(st.SATA.WriteBytes), stats.FormatBytes(st.SATA.BgReadBytes),
		st.CacheHits, st.CacheMisses)
}
