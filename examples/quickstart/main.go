// Quickstart: open a HyperDB over simulated devices, write, read, scan and
// delete a few keys, and print the engine's view of where the data lives.
package main

import (
	"fmt"
	"log"

	"hyperdb"
)

func main() {
	// Paper-profile simulated devices: 256 MiB NVMe + 8 GiB SATA.
	db, err := hyperdb.Open(hyperdb.DefaultOptions())
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer db.Close()

	// Writes land in the NVMe tier's zones, durably, with no WAL.
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user%04d", i)
		value := fmt.Sprintf("profile-data-for-%04d", i)
		if err := db.Put([]byte(key), []byte(value)); err != nil {
			log.Fatalf("put: %v", err)
		}
	}

	// Point reads check DRAM cache → NVMe zone index → SATA LSM.
	v, err := db.Get([]byte("user0042"))
	if err != nil {
		log.Fatalf("get: %v", err)
	}
	fmt.Printf("user0042 = %s\n", v)

	// Range scans merge both tiers in key order.
	kvs, err := db.Scan([]byte("user0990"), 5)
	if err != nil {
		log.Fatalf("scan: %v", err)
	}
	fmt.Println("scan from user0990:")
	for _, kv := range kvs {
		fmt.Printf("  %s = %s\n", kv.Key, kv.Value)
	}

	// Deletes write a tombstone that migrates down to erase the SATA copy.
	if err := db.Delete([]byte("user0007")); err != nil {
		log.Fatalf("delete: %v", err)
	}
	if _, err := db.Get([]byte("user0007")); err != hyperdb.ErrNotFound {
		log.Fatalf("expected ErrNotFound, got %v", err)
	}
	fmt.Println("user0007 deleted")

	fmt.Println("\nengine state:")
	fmt.Print(db.Stats())
}
