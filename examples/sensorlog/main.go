// Sensorlog example: a write-intensive time-series scenario — the workload
// class the paper's introduction motivates. A fleet of sensors appends
// readings keyed by (sensor id, timestamp); recent windows are re-read and
// scanned while old data cools off and migrates to the capacity tier.
// Zone-based placement keeps each sensor's recent readings in few pages, so
// demotion batches stay cheap.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"

	"hyperdb"
	"hyperdb/internal/stats"
)

const (
	sensors      = 64
	readingsEach = 4_000
	readingSize  = 64
)

// key is sensorID(2B) | timestamp(8B): readings of one sensor are adjacent
// and time-ordered, so windowed scans are range scans.
func key(sensor uint16, ts uint64) []byte {
	b := make([]byte, 10)
	binary.BigEndian.PutUint16(b, sensor)
	binary.BigEndian.PutUint64(b[2:], ts)
	return b
}

func main() {
	db, err := hyperdb.Open(hyperdb.Options{
		NVMeCapacity: 8 << 20,
		SATACapacity: 1 << 30,
		Partitions:   4,
	})
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(3))
	reading := make([]byte, readingSize)

	fmt.Printf("ingesting %d readings from %d sensors...\n", sensors*readingsEach, sensors)
	for ts := uint64(0); ts < readingsEach; ts++ {
		for s := uint16(0); s < sensors; s++ {
			rng.Read(reading)
			if err := db.Put(key(s, ts), reading); err != nil {
				log.Fatalf("put: %v", err)
			}
		}
		// Dashboards re-read the freshest window of a few hot sensors.
		if ts%50 == 49 {
			for _, s := range []uint16{3, 7, 11} {
				if _, err := db.Get(key(s, ts)); err != nil {
					log.Fatalf("get: %v", err)
				}
			}
		}
	}

	// Windowed scan: the last 100 readings of sensor 7.
	start := key(7, readingsEach-100)
	kvs, err := db.Scan(start, 100)
	if err != nil {
		log.Fatalf("scan: %v", err)
	}
	fmt.Printf("windowed scan of sensor 7: %d readings, first ts=%d last ts=%d\n",
		len(kvs),
		binary.BigEndian.Uint64(kvs[0].Key[2:]),
		binary.BigEndian.Uint64(kvs[len(kvs)-1].Key[2:]))

	if err := db.DrainBackground(); err != nil {
		log.Fatalf("drain: %v", err)
	}
	st := db.Stats()
	fmt.Printf("\nafter ingest: NVMe holds %d hot objects; %d migrations moved %d readings to SATA\n",
		st.Zone.Objects, st.Zone.Migrations, st.Zone.MigratedObjects)
	fmt.Printf("migration efficiency: %.1f objects per page read (zone locality at work)\n",
		float64(st.Zone.MigratedObjects)/float64(max64(st.Zone.MigrationPageReads, 1)))
	fmt.Printf("tier traffic: NVMe w=%s, SATA w=%s\n",
		stats.FormatBytes(st.NVMe.WriteBytes), stats.FormatBytes(st.SATA.WriteBytes))
	for _, l := range st.Levels {
		if l.Tables > 0 {
			fmt.Printf("L%d: %d tables, %s live\n", l.Level, l.Tables, stats.FormatBytes(uint64(l.LiveBytes)))
		}
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
