// YCSB example: run any of the paper's workloads (A–F) against any of the
// four engines and print throughput and latency percentiles — a one-command
// version of one Figure 8 cell.
//
//	go run ./examples/ycsb -engine hyperdb -workload A -records 100000 -ops 50000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hyperdb/internal/harness"
	"hyperdb/internal/stats"
	"hyperdb/internal/ycsb"
)

func main() {
	engine := flag.String("engine", "hyperdb", "hyperdb | rocksdb | rocksdb-sc | prismdb")
	workload := flag.String("workload", "A", "YCSB workload letter A-F")
	records := flag.Int64("records", 100_000, "records to load")
	ops := flag.Int64("ops", 50_000, "operations to run")
	valueSize := flag.Int("value", 128, "value size in bytes")
	clients := flag.Int("clients", 8, "concurrent clients")
	theta := flag.Float64("theta", -1, "zipfian skew override (0 = uniform)")
	unthrottled := flag.Bool("unthrottled", false, "disable device timing model")
	flag.Parse()

	w, ok := ycsb.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (want A-F)\n", *workload)
		os.Exit(2)
	}
	if *theta >= 0 {
		w = w.WithTheta(*theta)
	}

	cfg := harness.Config{Unthrottled: *unthrottled}
	inst, err := harness.Build(harness.EngineKind(*engine), cfg)
	if err != nil {
		log.Fatalf("build: %v", err)
	}
	defer inst.Engine.Close()

	fmt.Printf("loading %d records (%dB values) into %s...\n", *records, *valueSize, inst.Engine.Label())
	if err := harness.Load(inst.Engine, *records, *valueSize, *clients, 7); err != nil {
		log.Fatalf("load: %v", err)
	}

	fmt.Printf("running %d YCSB-%s ops with %d clients...\n", *ops, w.Name, *clients)
	res, err := harness.Run(inst.Engine, harness.RunConfig{
		Clients:   *clients,
		Ops:       *ops,
		Workload:  w,
		Records:   *records,
		ValueSize: *valueSize,
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Println(res)

	nv := inst.NVMe.Counters().Snapshot()
	sa := inst.SATA.Counters().Snapshot()
	fmt.Printf("NVMe traffic: read=%s write=%s (bg: r=%s w=%s)\n",
		stats.FormatBytes(nv.ReadBytes), stats.FormatBytes(nv.WriteBytes),
		stats.FormatBytes(nv.BgReadBytes), stats.FormatBytes(nv.BgWriteBytes))
	fmt.Printf("SATA traffic: read=%s write=%s (bg: r=%s w=%s)\n",
		stats.FormatBytes(sa.ReadBytes), stats.FormatBytes(sa.WriteBytes),
		stats.FormatBytes(sa.BgReadBytes), stats.FormatBytes(sa.BgWriteBytes))
}
