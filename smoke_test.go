package hyperdb_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"hyperdb"
)

func key(i uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, i)
	return b
}

func openSmall(t testing.TB, nvmeCap int64) *hyperdb.DB {
	t.Helper()
	db, err := hyperdb.Open(hyperdb.Options{
		Unthrottled:       true,
		NVMeCapacity:      nvmeCap,
		SATACapacity:      1 << 30,
		Partitions:        4,
		CacheBytes:        4 << 20,
		MigrationBatch:    256 << 10,
		DisableBackground: true,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestSmokePutGet(t *testing.T) {
	db := openSmall(t, 64<<20)
	for i := uint64(0); i < 1000; i++ {
		if err := db.Put(key(i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 1000; i++ {
		v, err := db.Get(key(i))
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if want := fmt.Sprintf("value-%d", i); string(v) != want {
			t.Fatalf("get %d = %q, want %q", i, v, want)
		}
	}
	if _, err := db.Get(key(99999)); err != hyperdb.ErrNotFound {
		t.Fatalf("missing key: got %v, want ErrNotFound", err)
	}
}

func TestSmokeMigrationAndReadback(t *testing.T) {
	// Small NVMe forces demotions into the capacity tier.
	db := openSmall(t, 4<<20)
	const n = 40000
	rng := rand.New(rand.NewSource(1))
	vals := make(map[uint64][]byte, n)
	for i := 0; i < n; i++ {
		k := uint64(rng.Intn(n))
		v := make([]byte, 64+rng.Intn(64))
		rng.Read(v)
		vals[k] = v
		if err := db.Put(key(k), v); err != nil {
			t.Fatalf("put: %v", err)
		}
		if i%2000 == 0 {
			for p := 0; p < 4; p++ {
				if err := db.MigrationStep(p); err != nil {
					t.Fatalf("migrate: %v", err)
				}
			}
		}
	}
	if err := db.DrainBackground(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	st := db.Stats()
	if st.Zone.Migrations == 0 {
		t.Fatalf("expected migrations to happen, stats: %+v", st.Zone)
	}
	for k, want := range vals {
		v, err := db.Get(key(k))
		if err != nil {
			t.Fatalf("get %d after migration: %v", k, err)
		}
		if !bytes.Equal(v, want) {
			t.Fatalf("get %d = %d bytes, want %d bytes", k, len(v), len(want))
		}
	}
}

func TestSmokeDeleteAndScan(t *testing.T) {
	db := openSmall(t, 16<<20)
	for i := uint64(0); i < 500; i++ {
		if err := db.Put(key(i), []byte{byte(i)}); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := uint64(0); i < 500; i += 2 {
		if err := db.Delete(key(i)); err != nil {
			t.Fatalf("delete: %v", err)
		}
	}
	if _, err := db.Get(key(4)); err != hyperdb.ErrNotFound {
		t.Fatalf("deleted key: got %v", err)
	}
	kvs, err := db.Scan(key(0), 100)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(kvs) != 100 {
		t.Fatalf("scan returned %d, want 100", len(kvs))
	}
	for i, kv := range kvs {
		want := uint64(2*i + 1) // odd keys survive
		if !bytes.Equal(kv.Key, key(want)) {
			t.Fatalf("scan[%d] = %x, want %x", i, kv.Key, key(want))
		}
	}
}
