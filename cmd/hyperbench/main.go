// Command hyperbench regenerates every table and figure from the paper's
// evaluation (§4) on the simulated heterogeneous devices.
//
// Usage:
//
//	hyperbench [-scale F] [-quick] [figure ...]
//
// With no figure arguments, every figure runs in order. Figure names:
// fig2 fig3 fig6 fig8 fig9a fig9b fig9c fig10 fig11.
//
// -workload=counter bypasses the figure map and runs the served counter
// A/B instead: hot-key INCRs through a wire server with the drainer's
// delta folding on vs off (see merge_bench_test.go for the recorded
// benchmark form):
//
//	hyperbench -workload=counter -clients 32 -inflight 16 -counter-ops 200000
//
// -workload=compress runs the capacity-tier codec A/B instead (the
// LevelDB+Snappy runbook shape): compressible values loaded past the NVMe
// tier, contrasting on-disk bytes, compaction traffic and read latency
// with the block codec on vs off. -compress=on|off picks one side; for
// figure runs the same flag applies the codec to every engine:
//
//	hyperbench -workload=compress [-compress on|off] [-compress-keys 20000]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"hyperdb/internal/harness"
	"hyperdb/internal/hotness"
)

func main() {
	scaleF := flag.Float64("scale", 1.0, "multiply dataset and op counts by this factor")
	quick := flag.Bool("quick", false, "tiny unthrottled run (CI smoke): traffic shapes only, no timing fidelity")
	verbose := flag.Bool("v", false, "print per-run progress")
	jsonOut := flag.Bool("json", false, "emit figures as JSON instead of text tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile to this file")
	hotMode := flag.String("hotness", "bloom", "HyperDB hotness tracker mode: bloom (paper-faithful) or sketch (O(1) memory)")
	workload := flag.String("workload", "", "alternative workload instead of paper figures: counter, compress")
	clients := flag.Int("clients", 32, "counter workload: client connections")
	inflight := flag.Int("inflight", 16, "counter workload: pipelined increments per connection")
	counterKeys := flag.Int("counter-keys", 64, "counter workload: counter keyspace size")
	counterOps := flag.Int("counter-ops", 200_000, "counter workload: total increments per A/B side")
	hotPct := flag.Int("hot", 50, "counter workload: percent of increments on the hottest key")
	compressArg := flag.String("compress", "", "capacity-tier block codec: on or off (figures: applies to every engine; -workload=compress: picks one A/B side, empty runs both)")
	compressKeys := flag.Int("compress-keys", 20_000, "compress workload: loaded keys")
	compressVal := flag.Int("compress-value", 1024, "compress workload: value size in bytes")
	compressReads := flag.Int("compress-reads", 4_000, "compress workload: measured point reads")
	flag.Parse()
	switch *compressArg {
	case "", "on", "off":
	default:
		fmt.Fprintf(os.Stderr, "hyperbench: -compress must be on or off, got %q\n", *compressArg)
		os.Exit(2)
	}
	switch *workload {
	case "":
	case "compress":
		if flag.NArg() != 0 || *compressKeys < 1 || *compressVal < 16 || *compressReads < 1 {
			compressUsage()
		}
		sides := []string{"off", "on"}
		if *compressArg != "" {
			sides = []string{*compressArg}
		}
		if err := runCompressWorkload(compressConfig{
			keys:  *compressKeys,
			value: *compressVal,
			reads: *compressReads,
			sides: sides,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "hyperbench:", err)
			os.Exit(1)
		}
		return
	case "counter":
		if flag.NArg() != 0 || *clients < 1 || *inflight < 1 || *counterKeys < 2 ||
			*counterOps < 1 || *hotPct < 0 || *hotPct > 100 {
			counterUsage()
		}
		if err := runCounterWorkload(counterConfig{
			clients:  *clients,
			inflight: *inflight,
			keys:     *counterKeys,
			ops:      *counterOps,
			hotPct:   *hotPct,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "hyperbench:", err)
			os.Exit(1)
		}
		return
	default:
		fmt.Fprintf(os.Stderr, "hyperbench: unknown -workload %q (want counter)\n", *workload)
		os.Exit(2)
	}
	switch hotness.Mode(*hotMode) {
	case hotness.ModeBloom, hotness.ModeSketch:
	default:
		fmt.Fprintf(os.Stderr, "hyperbench: -hotness must be %q or %q, got %q\n",
			hotness.ModeBloom, hotness.ModeSketch, *hotMode)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
		defer writeProfile("mutex", *mutexProfile)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1000) // one sample per µs blocked
		defer writeProfile("block", *blockProfile)
	}

	scale := harness.DefaultScale().Mult(*scaleF)
	if *quick {
		scale = harness.DefaultScale().Mult(0.1)
		scale.Throttled = false
	}
	scale.TrackerMode = hotness.Mode(*hotMode)
	scale.Compress = *compressArg

	figs := flag.Args()
	if len(figs) == 0 {
		figs = harness.FigureOrder
	}

	var progress *os.File
	if *verbose {
		progress = os.Stderr
	}

	for _, name := range figs {
		fn, ok := harness.Figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; available: %v\n", name, harness.FigureOrder)
			os.Exit(2)
		}
		table, err := fn(scale, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		if *jsonOut {
			b, err := table.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Stdout.Write(b)
			fmt.Println()
		} else {
			table.Fprint(os.Stdout)
		}
	}
}

// writeProfile dumps a named runtime profile (mutex, block) to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if p := pprof.Lookup(name); p != nil {
		if err := p.WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}
