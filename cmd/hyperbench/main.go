// Command hyperbench regenerates every table and figure from the paper's
// evaluation (§4) on the simulated heterogeneous devices.
//
// Usage:
//
//	hyperbench [-scale F] [-quick] [figure ...]
//
// With no figure arguments, every figure runs in order. Figure names:
// fig2 fig3 fig6 fig8 fig9a fig9b fig9c fig10 fig11.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"hyperdb/internal/harness"
	"hyperdb/internal/hotness"
)

func main() {
	scaleF := flag.Float64("scale", 1.0, "multiply dataset and op counts by this factor")
	quick := flag.Bool("quick", false, "tiny unthrottled run (CI smoke): traffic shapes only, no timing fidelity")
	verbose := flag.Bool("v", false, "print per-run progress")
	jsonOut := flag.Bool("json", false, "emit figures as JSON instead of text tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex-contention profile to this file")
	blockProfile := flag.String("blockprofile", "", "write a blocking profile to this file")
	hotMode := flag.String("hotness", "bloom", "HyperDB hotness tracker mode: bloom (paper-faithful) or sketch (O(1) memory)")
	flag.Parse()
	switch hotness.Mode(*hotMode) {
	case hotness.ModeBloom, hotness.ModeSketch:
	default:
		fmt.Fprintf(os.Stderr, "hyperbench: -hotness must be %q or %q, got %q\n",
			hotness.ModeBloom, hotness.ModeSketch, *hotMode)
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *mutexProfile != "" {
		runtime.SetMutexProfileFraction(5)
		defer writeProfile("mutex", *mutexProfile)
	}
	if *blockProfile != "" {
		runtime.SetBlockProfileRate(1000) // one sample per µs blocked
		defer writeProfile("block", *blockProfile)
	}

	scale := harness.DefaultScale().Mult(*scaleF)
	if *quick {
		scale = harness.DefaultScale().Mult(0.1)
		scale.Throttled = false
	}
	scale.TrackerMode = hotness.Mode(*hotMode)

	figs := flag.Args()
	if len(figs) == 0 {
		figs = harness.FigureOrder
	}

	var progress *os.File
	if *verbose {
		progress = os.Stderr
	}

	for _, name := range figs {
		fn, ok := harness.Figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; available: %v\n", name, harness.FigureOrder)
			os.Exit(2)
		}
		table, err := fn(scale, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		if *jsonOut {
			b, err := table.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Stdout.Write(b)
			fmt.Println()
		} else {
			table.Fprint(os.Stdout)
		}
	}
}

// writeProfile dumps a named runtime profile (mutex, block) to path.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	if p := pprof.Lookup(name); p != nil {
		if err := p.WriteTo(f, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
}
