// Command hyperbench regenerates every table and figure from the paper's
// evaluation (§4) on the simulated heterogeneous devices.
//
// Usage:
//
//	hyperbench [-scale F] [-quick] [figure ...]
//
// With no figure arguments, every figure runs in order. Figure names:
// fig2 fig3 fig6 fig8 fig9a fig9b fig9c fig10 fig11.
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperdb/internal/harness"
)

func main() {
	scaleF := flag.Float64("scale", 1.0, "multiply dataset and op counts by this factor")
	quick := flag.Bool("quick", false, "tiny unthrottled run (CI smoke): traffic shapes only, no timing fidelity")
	verbose := flag.Bool("v", false, "print per-run progress")
	jsonOut := flag.Bool("json", false, "emit figures as JSON instead of text tables")
	flag.Parse()

	scale := harness.DefaultScale().Mult(*scaleF)
	if *quick {
		scale = harness.DefaultScale().Mult(0.1)
		scale.Throttled = false
	}

	figs := flag.Args()
	if len(figs) == 0 {
		figs = harness.FigureOrder
	}

	var progress *os.File
	if *verbose {
		progress = os.Stderr
	}

	for _, name := range figs {
		fn, ok := harness.Figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; available: %v\n", name, harness.FigureOrder)
			os.Exit(2)
		}
		table, err := fn(scale, progress)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", name, err)
			os.Exit(1)
		}
		if *jsonOut {
			b, err := table.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Stdout.Write(b)
			fmt.Println()
		} else {
			table.Fprint(os.Stdout)
		}
	}
}
