package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"time"

	"hyperdb"
	"hyperdb/internal/device"
)

// compressConfig parameterises the -workload=compress run.
type compressConfig struct {
	keys  int      // loaded keys
	value int      // value size in bytes
	reads int      // random point reads measured after the load settles
	sides []string // codec settings to run ("off", "on")
}

// runCompressWorkload is the per-tier codec A/B from the LevelDB+Snappy
// runbook (SNIPPETS.md snippet 2), adapted to HyperDB's tiering: load
// compressible YCSB-style values until they demote to the SATA capacity
// tier, force the background work to settle, and contrast on-disk bytes,
// compaction bytes moved, load CPU cost and read latency with the codec on
// vs off. BenchmarkCompressColdTier (compress_bench_test.go) is the
// recorded twin; BENCH_compress.json holds its published numbers.
func runCompressWorkload(cfg compressConfig) error {
	fmt.Printf("compress workload: %d keys x %dB compressible values, %d point reads\n",
		cfg.keys, cfg.value, cfg.reads)
	fmt.Printf("%-10s %10s %12s %12s %12s %8s %10s %10s\n",
		"compress", "load/s", "sataUsedMB", "sataWriteMB", "rawMB", "ratio", "get_us", "zoneget_us")
	for _, side := range cfg.sides {
		if err := runCompressOnce(cfg, side); err != nil {
			return err
		}
	}
	return nil
}

func runCompressOnce(cfg compressConfig, side string) error {
	// The NVMe tier is sized well under the dataset so migration pushes the
	// cold majority down to SATA, where the codec applies; throttled paper
	// profiles keep read latency honest.
	nvmeCap := int64(cfg.keys) * int64(cfg.value+16) / 6
	if nvmeCap < 2<<20 {
		nvmeCap = 2 << 20
	}
	db, err := hyperdb.Open(hyperdb.Options{
		Partitions: 4,
		NVMeDevice: device.New(device.NVMeProfile(nvmeCap)),
		SATADevice: device.New(device.SATAProfile(4 << 30)),
		CacheBytes: 1 << 20,
		Compress:   side,
	})
	if err != nil {
		return err
	}
	defer db.Close()

	keys := make([][]byte, cfg.keys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("cmp-%08d", i))
	}
	rng := rand.New(rand.NewSource(1))
	t0 := time.Now()
	for i, k := range keys {
		if err := db.Put(k, compressibleValue(i, cfg.value)); err != nil {
			return err
		}
	}
	loadDur := time.Since(t0)
	if err := db.DrainBackground(); err != nil {
		return err
	}

	// Point-read latency split by tier: cold keys (low indexes demoted
	// first) exercise the SATA decode path, a hot resident sample pins the
	// zone tier, which must be codec-agnostic.
	var coldNS, zoneNS int64
	for i := 0; i < cfg.reads; i++ {
		k := keys[rng.Intn(cfg.keys)]
		t := time.Now()
		v, err := db.Get(k)
		coldNS += time.Since(t).Nanoseconds()
		if err != nil {
			return fmt.Errorf("compress=%s: read %q: %v", side, k, err)
		}
		if !bytes.HasPrefix(v, []byte("field0=")) {
			return fmt.Errorf("compress=%s: read %q returned corrupt value", side, k)
		}
	}
	hot := keys[cfg.keys-1]
	for i := 0; i < cfg.reads; i++ {
		t := time.Now()
		if _, err := db.Get(hot); err != nil {
			return err
		}
		zoneNS += time.Since(t).Nanoseconds()
	}

	st := db.Stats()
	var raw, stored uint64
	for _, lv := range st.Levels {
		raw += lv.RawBytes
		stored += lv.StoredBytes
	}
	ratio := 1.0
	if stored > 0 {
		ratio = float64(raw) / float64(stored)
	}
	sataWrite := st.SATA.WriteBytes + st.SATA.BgWriteBytes
	fmt.Printf("%-10s %10.0f %12.1f %12.1f %12.1f %8.2f %10.1f %10.1f\n",
		side,
		float64(cfg.keys)/loadDur.Seconds(),
		float64(st.SATAUsed)/(1<<20),
		float64(sataWrite)/(1<<20),
		float64(raw)/(1<<20),
		ratio,
		float64(coldNS)/float64(cfg.reads)/1e3,
		float64(zoneNS)/float64(cfg.reads)/1e3)
	return nil
}

// compressibleValue builds a YCSB-style value: named fields of repetitive
// text with a unique stamp, ~4x compressible by the LZ codec — the shape
// the ISSUE's acceptance ratio is measured against.
func compressibleValue(i, size int) []byte {
	v := make([]byte, 0, size)
	field := 0
	for len(v) < size {
		v = append(v, fmt.Sprintf("field%d=%08d,", field, i)...)
		pad := size / 4
		if pad > size-len(v) {
			pad = size - len(v)
		}
		for j := 0; j < pad; j++ {
			v = append(v, byte('a'+field%16))
		}
		field++
	}
	return v[:size]
}

func compressUsage() {
	fmt.Fprintln(os.Stderr, "usage: hyperbench -workload=compress [-compress on|off] [-compress-keys N] [-compress-value BYTES] [-compress-reads N]")
	os.Exit(2)
}
