package main

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/device"
	"hyperdb/internal/repl"
	"hyperdb/internal/server"
)

// counterConfig parameterises the -workload=counter run.
type counterConfig struct {
	clients  int
	inflight int
	keys     int
	ops      int
	hotPct   int
}

// runCounterWorkload is the VSA-style counter A/B: a served instance takes
// `ops` hot-key increments from `clients` connections (each `inflight`
// deep), once with the drainer's delta folding and once without, and the
// table contrasts acked throughput, engine write entries, and
// replication-log bytes. It is the interactive twin of BenchmarkMergeCounter
// (merge_bench_test.go) — same workload shape, tunable from flags.
func runCounterWorkload(cfg counterConfig) error {
	fmt.Printf("counter workload: %d ops, %d clients x %d in flight, %d keys (%d%% on the hottest)\n",
		cfg.ops, cfg.clients, cfg.inflight, cfg.keys, cfg.hotPct)
	fmt.Printf("%-10s %10s %12s %14s %14s %12s\n",
		"fold", "acked/s", "ns/op", "entries/op", "logBytes/op", "folded")
	for _, fold := range []bool{true, false} {
		if err := runCounterOnce(cfg, fold); err != nil {
			return err
		}
	}
	return nil
}

func runCounterOnce(cfg counterConfig, fold bool) error {
	rlog := repl.NewLog(repl.LogConfig{})
	db, err := hyperdb.Open(hyperdb.Options{
		Partitions: 4,
		NVMeDevice: device.New(device.NVMeProfile(256 << 20)),
		SATADevice: device.New(device.SATAProfile(1 << 30)),
		CacheBytes: 4 << 20,
		Tee:        rlog,
	})
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{DB: db, OwnDB: true, NoMergeFold: !fold})
	if err != nil {
		db.Close()
		return err
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		db.Close()
		return err
	}
	defer srv.Shutdown()

	keys := make([][]byte, cfg.keys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("ctr-%04d", i))
	}
	pool := make([]*client.Client, cfg.clients)
	for i := range pool {
		c, err := client.Dial(client.Options{Addr: addr.String(), Conns: 1})
		if err != nil {
			return err
		}
		defer c.Close()
		pool[i] = c
	}

	acked := make([]atomic.Int64, cfg.keys)
	var next atomic.Int64
	var failed atomic.Int64
	var wg sync.WaitGroup
	t0 := time.Now()
	for cl := 0; cl < cfg.clients; cl++ {
		for p := 0; p < cfg.inflight; p++ {
			wg.Add(1)
			go func(cl, p int) {
				defer wg.Done()
				c := pool[cl]
				rng := rand.New(rand.NewSource(int64(cl*1000 + p)))
				for {
					i := int(next.Add(1)) - 1
					if i >= cfg.ops {
						return
					}
					ki := 0
					if rng.Intn(100) >= cfg.hotPct {
						ki = 1 + rng.Intn(cfg.keys-1)
					}
					if _, err := c.Incr(keys[ki], 1); err != nil {
						failed.Add(1)
					} else {
						acked[ki].Add(1)
					}
				}
			}(cl, p)
		}
	}
	wg.Wait()
	dur := time.Since(t0)
	if n := failed.Load(); n > 0 {
		return fmt.Errorf("counter workload: %d increments failed", n)
	}

	// Exactness before numbers: every committed counter must equal its
	// acked model.
	check, err := client.Dial(client.Options{Addr: addr.String(), Conns: 1})
	if err != nil {
		return err
	}
	defer check.Close()
	for i, k := range keys {
		want := acked[i].Load()
		if want == 0 {
			continue
		}
		got, err := check.Incr(k, 0)
		if err != nil || got != want {
			return fmt.Errorf("counter %s: committed %d (err %v), acked %d", k, got, err, want)
		}
	}

	st := srv.Stats()
	fmt.Printf("%-10v %10.0f %12.0f %14.3f %14.2f %12d\n",
		fold,
		float64(cfg.ops)/dur.Seconds(),
		float64(dur.Nanoseconds())/float64(cfg.ops),
		float64(st.WriteOps.Load())/float64(cfg.ops),
		float64(rlog.Bytes())/float64(cfg.ops),
		st.MergeFolded.Load())
	return nil
}

func counterUsage() {
	fmt.Fprintln(os.Stderr, "usage: hyperbench -workload=counter [-clients N] [-inflight N] [-counter-keys N] [-counter-ops N] [-hot PCT]")
	os.Exit(2)
}
