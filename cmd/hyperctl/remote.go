package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"hyperdb/internal/client"
)

// remote runs one wire-protocol subcommand against a hyperd at -addr.
// With -policy or -followers, reads route through a client Session — gated
// per policy against the follower addresses — and the serving node and
// resulting session token print to stderr; -token seeds the session from a
// token carried across invocations (scripts chain them for read-your-writes
// across processes).
func remote(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:4980", "hyperd address (the primary, in session mode)")
	limit := fs.Int("limit", 20, "scan: max pairs to return")
	policyName := fs.String("policy", "primary", "session read policy: primary, bounded, or any")
	readPolicy := fs.String("read-policy", "", "alias for -policy")
	followers := fs.String("followers", "", "comma-separated follower addresses for session reads")
	token := fs.String("token", "0", "seed session token from a previous invocation (SEQ or SEQ@EPOCH)")
	fs.Parse(args)
	rest := fs.Args()
	if *readPolicy != "" {
		*policyName = *readPolicy
	}

	if cmd == "badframe" {
		badframe(*addr)
		return
	}

	c, err := client.Dial(client.Options{Addr: *addr, Conns: 1})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	sessionMode := false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "policy", "read-policy", "followers", "token":
			sessionMode = true
		}
	})
	if sessionMode {
		sessionRemote(cmd, c, *policyName, *followers, *token, *limit, rest)
		return
	}

	switch cmd {
	case "ping":
		t0 := time.Now()
		if err := c.Ping(); err != nil {
			fatal(err)
		}
		fmt.Printf("PONG %v\n", time.Since(t0).Round(time.Microsecond))
	case "put":
		if len(rest) != 2 {
			fatalf("usage: hyperctl put [-addr A] <key> <value>")
		}
		if err := c.Put([]byte(rest[0]), []byte(rest[1])); err != nil {
			fatal(err)
		}
		fmt.Println("OK")
	case "get":
		if len(rest) != 1 {
			fatalf("usage: hyperctl get [-addr A] <key>")
		}
		v, err := c.Get([]byte(rest[0]))
		if errors.Is(err, client.ErrNotFound) {
			fmt.Fprintln(os.Stderr, "(not found)")
			os.Exit(1)
		}
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(v, '\n'))
	case "del":
		if len(rest) != 1 {
			fatalf("usage: hyperctl del [-addr A] <key>")
		}
		if err := c.Delete([]byte(rest[0])); err != nil {
			fatal(err)
		}
		fmt.Println("OK")
	case "incr":
		key, delta := incrArgs(rest, "hyperctl incr [-addr A] <key> [delta]")
		v, err := c.Incr(key, delta)
		if err != nil {
			fatal(err)
		}
		fmt.Println(v)
	case "mget":
		if len(rest) == 0 {
			fatalf("usage: hyperctl mget [-addr A] <key>...")
		}
		keys := make([][]byte, len(rest))
		for i, k := range rest {
			keys[i] = []byte(k)
		}
		vals, err := c.MultiGet(keys)
		if err != nil {
			fatal(err)
		}
		printMGet(rest, vals)
	case "scan":
		var start []byte
		if len(rest) > 1 {
			fatalf("usage: hyperctl scan [-addr A] [-limit N] [start]")
		}
		if len(rest) == 1 {
			start = []byte(rest[0])
		}
		kvs, err := c.Scan(start, *limit)
		if err != nil {
			fatal(err)
		}
		for _, kv := range kvs {
			fmt.Printf("%q %q\n", kv.Key, kv.Value)
		}
		fmt.Fprintf(os.Stderr, "(%d pairs)\n", len(kvs))
	case "stats":
		text, err := c.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
	}
}

// sessionRemote runs one subcommand through a client Session: reads route
// follower-first per the policy, writes return a token, and the serving
// node + token print to stderr so scripts can chain invocations.
func sessionRemote(cmd string, primary *client.Client, policyName, followerList, token string, limit int, rest []string) {
	policy, err := client.ParseReadPolicy(policyName)
	if err != nil {
		fatal(err)
	}
	seed, err := client.ParseToken(token)
	if err != nil {
		fatal(err)
	}
	var fcs []*client.Client
	if followerList != "" {
		for _, a := range strings.Split(followerList, ",") {
			fc, err := client.Dial(client.Options{Addr: strings.TrimSpace(a), Conns: 1})
			if err != nil {
				fatal(err)
			}
			defer fc.Close()
			fcs = append(fcs, fc)
		}
	}
	sess := client.NewSession(primary, fcs, policy)
	sess.SeedToken(seed)
	note := func(read bool) {
		if read {
			fmt.Fprintf(os.Stderr, "(served by %s, token %s)\n", sess.LastNode(), sess.Token())
		} else {
			fmt.Fprintf(os.Stderr, "(token %s)\n", sess.Token())
		}
	}

	switch cmd {
	case "put":
		if len(rest) != 2 {
			fatalf("usage: hyperctl put [-addr A] [-policy P] <key> <value>")
		}
		if err := sess.Put([]byte(rest[0]), []byte(rest[1])); err != nil {
			fatal(err)
		}
		fmt.Println("OK")
		note(false)
	case "del":
		if len(rest) != 1 {
			fatalf("usage: hyperctl del [-addr A] [-policy P] <key>")
		}
		if err := sess.Delete([]byte(rest[0])); err != nil {
			fatal(err)
		}
		fmt.Println("OK")
		note(false)
	case "get":
		if len(rest) != 1 {
			fatalf("usage: hyperctl get [-addr A] [-policy P] [-followers A,B] [-token N] <key>")
		}
		v, err := sess.Get([]byte(rest[0]))
		if errors.Is(err, client.ErrNotFound) {
			note(true)
			fmt.Fprintln(os.Stderr, "(not found)")
			os.Exit(1)
		}
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(v, '\n'))
		note(true)
	case "incr":
		key, delta := incrArgs(rest, "hyperctl incr [-addr A] [-policy P] <key> [delta]")
		v, err := sess.Incr(key, delta)
		if err != nil {
			fatal(err)
		}
		fmt.Println(v)
		note(false)
	case "mget":
		if len(rest) == 0 {
			fatalf("usage: hyperctl mget [-addr A] [-policy P] [-followers A,B] [-token N] <key>...")
		}
		keys := make([][]byte, len(rest))
		for i, k := range rest {
			keys[i] = []byte(k)
		}
		vals, err := sess.MultiGet(keys)
		if err != nil {
			fatal(err)
		}
		printMGet(rest, vals)
		note(true)
	case "scan":
		var start []byte
		if len(rest) > 1 {
			fatalf("usage: hyperctl scan [-addr A] [-policy P] [-followers A,B] [-token N] [-limit N] [start]")
		}
		if len(rest) == 1 {
			start = []byte(rest[0])
		}
		kvs, err := sess.Scan(start, limit)
		if err != nil {
			fatal(err)
		}
		for _, kv := range kvs {
			fmt.Printf("%q %q\n", kv.Key, kv.Value)
		}
		fmt.Fprintf(os.Stderr, "(%d pairs)\n", len(kvs))
		note(true)
	default:
		fatalf("%s does not take session flags (-policy/-followers/-token)", cmd)
	}
}

// incrArgs parses `incr <key> [delta]`; delta defaults to 1.
func incrArgs(rest []string, usage string) ([]byte, int64) {
	if len(rest) < 1 || len(rest) > 2 {
		fatalf("usage: %s", usage)
	}
	delta := int64(1)
	if len(rest) == 2 {
		d, err := strconv.ParseInt(rest[1], 10, 64)
		if err != nil {
			fatalf("bad delta %q: %v", rest[1], err)
		}
		delta = d
	}
	return []byte(rest[0]), delta
}

// printMGet renders MultiGet results: one line per key, absent keys marked.
func printMGet(keys []string, vals [][]byte) {
	for i, k := range keys {
		if vals[i] == nil {
			fmt.Printf("%q (not found)\n", k)
		} else {
			fmt.Printf("%q %q\n", k, vals[i])
		}
	}
}

// rywCmd implements `hyperctl ryw`: a live read-your-writes probe. It
// writes n fresh keys through a session and immediately reads each back
// under the chosen policy; with -policy bounded every read must return the
// just-written value no matter how far the followers lag. It reports where
// the reads landed and exits nonzero on a stale or missing read — the
// consistency harness's core check, runnable against a real deployment.
func rywCmd(args []string) {
	fs := flag.NewFlagSet("ryw", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:4980", "primary address")
	followerList := fs.String("followers", "", "comma-separated follower addresses")
	policyName := fs.String("policy", "bounded", "session read policy: primary, bounded, or any")
	n := fs.Int("n", 20, "write/read round trips")
	prefix := fs.String("prefix", "ryw", "key prefix (keys are <prefix>-<pid>-<i>)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fatalf("usage: hyperctl ryw [-addr A] [-followers A,B] [-policy P] [-n N]")
	}
	policy, err := client.ParseReadPolicy(*policyName)
	if err != nil {
		fatal(err)
	}

	pc, err := client.Dial(client.Options{Addr: *addr, Conns: 1})
	if err != nil {
		fatal(err)
	}
	defer pc.Close()
	var fcs []*client.Client
	if *followerList != "" {
		for _, a := range strings.Split(*followerList, ",") {
			fc, err := client.Dial(client.Options{Addr: strings.TrimSpace(a), Conns: 1})
			if err != nil {
				fatal(err)
			}
			defer fc.Close()
			fcs = append(fcs, fc)
		}
	}
	sess := client.NewSession(pc, fcs, policy)

	served := map[string]int{}
	stale := 0
	for i := 0; i < *n; i++ {
		key := []byte(fmt.Sprintf("%s-%d-%04d", *prefix, os.Getpid(), i))
		want := fmt.Sprintf("v%04d@%d", i, time.Now().UnixNano())
		if err := sess.Put(key, []byte(want)); err != nil {
			fatal(err)
		}
		got, err := sess.Get(key)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "hyperctl: ryw %q: %v\n", key, err)
			stale++
		case string(got) != want:
			fmt.Fprintf(os.Stderr, "hyperctl: ryw %q: got %q want %q\n", key, got, want)
			stale++
		}
		served[sess.LastNode()]++
	}
	fmt.Printf("ryw: %d round trips under policy %s (token %s)\n", *n, policy, sess.Token())
	for node, count := range served {
		fmt.Printf("  %-14s served %d\n", node, count)
	}
	fmt.Printf("  fallbacks %d (not_ready %d)\n", sess.Fallbacks(), sess.NotReady())
	if stale > 0 {
		fmt.Printf("FAILED: %d stale or failed reads\n", stale)
		os.Exit(1)
	}
	fmt.Println("OK: every read returned its own write")
}

// replCmd implements `hyperctl repl status`: fetch the server's stats text
// and render the replication section — the node's role, its log window, and
// each attached follower's acknowledged sequence and lag.
func replCmd(args []string) {
	// Accept both `repl status -addr A` and `repl -addr A status`.
	sub := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub = args[0]
		args = args[1:]
	}
	fs := flag.NewFlagSet("repl status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:4980", "hyperd address")
	fs.Parse(args)
	if sub == "" && fs.NArg() == 1 {
		sub = fs.Arg(0)
	} else if fs.NArg() != 0 {
		fatalf("usage: hyperctl repl status [-addr A]")
	}
	if sub != "status" {
		fatalf("usage: hyperctl repl status [-addr A]")
	}

	c, err := client.Dial(client.Options{Addr: *addr, Conns: 1})
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	text, err := c.Stats()
	if err != nil {
		fatal(err)
	}

	vals := map[string]string{}
	var followers [][]string
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "repl.") {
			continue
		}
		if fields[0] == "repl.follower" {
			followers = append(followers, fields[1:])
			continue
		}
		vals[fields[0]] = fields[1]
	}
	role, ok := vals["repl.role"]
	if !ok {
		fatalf("server at %s reports no replication section (old hyperd?)", *addr)
	}
	fmt.Printf("role: %s\n", role)
	if a, ok := vals["repl.applied"]; ok {
		fmt.Printf("applied: %s\n", a)
	}
	if h, ok := vals["repl.log_head"]; ok {
		fmt.Printf("log: head=%s floor=%s entries=%s pending=%s\n",
			h, vals["repl.log_floor"], vals["repl.log_entries"], vals["repl.log_pending"])
		fmt.Printf("followers: %s\n", vals["repl.followers"])
		for _, f := range followers {
			// fields: NAME acked N lag M
			if len(f) == 5 {
				fmt.Printf("  %-24s acked=%-10s lag=%s\n", f[0], f[2], f[4])
			}
		}
	} else {
		fmt.Println("replication: disabled (no log; start hyperd with -role)")
	}
}

// badframe sends bytes that are not a valid frame (a plausible length
// prefix followed by garbage that fails the CRC) and reports how the
// server reacted. A healthy hyperd drops the connection without crashing;
// the CI smoke test pings again afterwards to prove the daemon survived.
func badframe(addr string) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		fatal(err)
	}
	defer nc.Close()
	garbage := []byte{0, 0, 0, 14, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if _, err := nc.Write(garbage); err != nil {
		fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	n, err := nc.Read(buf)
	if err == nil {
		fatalf("server answered a malformed frame with %d bytes; expected a drop", n)
	}
	fmt.Println("OK: server dropped the malformed connection")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperctl:", err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hyperctl: "+format+"\n", args...)
	os.Exit(1)
}
