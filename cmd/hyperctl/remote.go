package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"hyperdb/internal/client"
)

// remote runs one wire-protocol subcommand against a hyperd at -addr.
func remote(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:4980", "hyperd address")
	limit := fs.Int("limit", 20, "scan: max pairs to return")
	fs.Parse(args)
	rest := fs.Args()

	if cmd == "badframe" {
		badframe(*addr)
		return
	}

	c, err := client.Dial(client.Options{Addr: *addr, Conns: 1})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	switch cmd {
	case "ping":
		t0 := time.Now()
		if err := c.Ping(); err != nil {
			fatal(err)
		}
		fmt.Printf("PONG %v\n", time.Since(t0).Round(time.Microsecond))
	case "put":
		if len(rest) != 2 {
			fatalf("usage: hyperctl put [-addr A] <key> <value>")
		}
		if err := c.Put([]byte(rest[0]), []byte(rest[1])); err != nil {
			fatal(err)
		}
		fmt.Println("OK")
	case "get":
		if len(rest) != 1 {
			fatalf("usage: hyperctl get [-addr A] <key>")
		}
		v, err := c.Get([]byte(rest[0]))
		if errors.Is(err, client.ErrNotFound) {
			fmt.Fprintln(os.Stderr, "(not found)")
			os.Exit(1)
		}
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(v, '\n'))
	case "del":
		if len(rest) != 1 {
			fatalf("usage: hyperctl del [-addr A] <key>")
		}
		if err := c.Delete([]byte(rest[0])); err != nil {
			fatal(err)
		}
		fmt.Println("OK")
	case "scan":
		var start []byte
		if len(rest) > 1 {
			fatalf("usage: hyperctl scan [-addr A] [-limit N] [start]")
		}
		if len(rest) == 1 {
			start = []byte(rest[0])
		}
		kvs, err := c.Scan(start, *limit)
		if err != nil {
			fatal(err)
		}
		for _, kv := range kvs {
			fmt.Printf("%q %q\n", kv.Key, kv.Value)
		}
		fmt.Fprintf(os.Stderr, "(%d pairs)\n", len(kvs))
	case "stats":
		text, err := c.Stats()
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
	}
}

// replCmd implements `hyperctl repl status`: fetch the server's stats text
// and render the replication section — the node's role, its log window, and
// each attached follower's acknowledged sequence and lag.
func replCmd(args []string) {
	// Accept both `repl status -addr A` and `repl -addr A status`.
	sub := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub = args[0]
		args = args[1:]
	}
	fs := flag.NewFlagSet("repl status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:4980", "hyperd address")
	fs.Parse(args)
	if sub == "" && fs.NArg() == 1 {
		sub = fs.Arg(0)
	} else if fs.NArg() != 0 {
		fatalf("usage: hyperctl repl status [-addr A]")
	}
	if sub != "status" {
		fatalf("usage: hyperctl repl status [-addr A]")
	}

	c, err := client.Dial(client.Options{Addr: *addr, Conns: 1})
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	text, err := c.Stats()
	if err != nil {
		fatal(err)
	}

	vals := map[string]string{}
	var followers [][]string
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 2 || !strings.HasPrefix(fields[0], "repl.") {
			continue
		}
		if fields[0] == "repl.follower" {
			followers = append(followers, fields[1:])
			continue
		}
		vals[fields[0]] = fields[1]
	}
	role, ok := vals["repl.role"]
	if !ok {
		fatalf("server at %s reports no replication section (old hyperd?)", *addr)
	}
	fmt.Printf("role: %s\n", role)
	if a, ok := vals["repl.applied"]; ok {
		fmt.Printf("applied: %s\n", a)
	}
	if h, ok := vals["repl.log_head"]; ok {
		fmt.Printf("log: head=%s floor=%s entries=%s pending=%s\n",
			h, vals["repl.log_floor"], vals["repl.log_entries"], vals["repl.log_pending"])
		fmt.Printf("followers: %s\n", vals["repl.followers"])
		for _, f := range followers {
			// fields: NAME acked N lag M
			if len(f) == 5 {
				fmt.Printf("  %-24s acked=%-10s lag=%s\n", f[0], f[2], f[4])
			}
		}
	} else {
		fmt.Println("replication: disabled (no log; start hyperd with -role)")
	}
}

// badframe sends bytes that are not a valid frame (a plausible length
// prefix followed by garbage that fails the CRC) and reports how the
// server reacted. A healthy hyperd drops the connection without crashing;
// the CI smoke test pings again afterwards to prove the daemon survived.
func badframe(addr string) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		fatal(err)
	}
	defer nc.Close()
	garbage := []byte{0, 0, 0, 14, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if _, err := nc.Write(garbage); err != nil {
		fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 64)
	n, err := nc.Read(buf)
	if err == nil {
		fatalf("server answered a malformed frame with %d bytes; expected a drop", n)
	}
	fmt.Println("OK: server dropped the malformed connection")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperctl:", err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hyperctl: "+format+"\n", args...)
	os.Exit(1)
}
