package main

import (
	"errors"
	"flag"
	"fmt"
	"strconv"
	"strings"

	"hyperdb/internal/client"
)

// clusterCmd dispatches the sharded-cluster subcommands: shardmap prints a
// node's map, handoff drives a slot migration, and cload/ccheck load and
// verify keys through the client-side shard routing — the pair
// scripts/cluster_smoke.sh uses to prove no acked key is lost across a
// handoff.
func clusterCmd(cmd string, args []string) {
	switch cmd {
	case "shardmap":
		shardmapCmd(args)
	case "handoff":
		handoffCmd(args)
	case "cload", "ccheck":
		loadCheckCmd(cmd, args)
	}
}

func shardmapCmd(args []string) {
	fs := flag.NewFlagSet("shardmap", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:4980", "any cluster node")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fatalf("usage: hyperctl shardmap [-addr A]")
	}
	c, err := client.Dial(client.Options{Addr: *addr, Conns: 1})
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	m, err := c.ShardMap()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("version %d, %d slots, %d groups\n", m.Version, len(m.Slots), len(m.Groups))
	for g, a := range m.Groups {
		owned := m.SlotsOf(uint32(g))
		fmt.Printf("  group %d %-24s %d slots %s\n", g, a, len(owned), formatSlots(owned))
	}
}

func handoffCmd(args []string) {
	fs := flag.NewFlagSet("handoff", flag.ExitOnError)
	target := fs.String("target", "", "node that pulls ownership of the slots (required)")
	fs.Parse(args)
	if *target == "" || fs.NArg() == 0 {
		fatalf("usage: hyperctl handoff -target A <slot|lo-hi>[,...] ...")
	}
	slots, err := parseSlots(fs.Args())
	if err != nil {
		fatal(err)
	}
	c, err := client.Dial(client.Options{Addr: *target, Conns: 1})
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	m, err := c.Handoff(slots)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("moved %d slots to %s (map version %d)\n", len(slots), *target, m.Version)
}

// loadCheckCmd is cload and ccheck: write (or verify) n deterministic keys
// through the routing client, so the same flags replayed after any number
// of handoffs must find every key wherever its slot moved.
func loadCheckCmd(cmd string, args []string) {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seeds := fs.String("seeds", "127.0.0.1:4980", "comma-separated cluster node addresses")
	n := fs.Int("n", 1000, "key count")
	start := fs.Int("start", 0, "first key index")
	prefix := fs.String("prefix", "ck", "key prefix (keys are <prefix>-<i>)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fatalf("usage: hyperctl %s [-seeds A,B] [-n N] [-start I] [-prefix P]", cmd)
	}
	cc, err := client.DialCluster(client.ClusterOptions{Seeds: splitAddrs(*seeds)})
	if err != nil {
		fatal(err)
	}
	defer cc.Close()

	key := func(i int) []byte { return []byte(fmt.Sprintf("%s-%08d", *prefix, i)) }
	val := func(i int) string { return fmt.Sprintf("val-%s-%08d", *prefix, i) }
	bad := 0
	for i := *start; i < *start+*n; i++ {
		if cmd == "cload" {
			if err := cc.Put(key(i), []byte(val(i))); err != nil {
				fatalf("put %s: %v", key(i), err)
			}
			continue
		}
		v, err := cc.Get(key(i))
		switch {
		case errors.Is(err, client.ErrNotFound):
			fmt.Printf("MISSING %s\n", key(i))
			bad++
		case err != nil:
			fatalf("get %s: %v", key(i), err)
		case string(v) != val(i):
			fmt.Printf("MISMATCH %s = %q, want %q\n", key(i), v, val(i))
			bad++
		}
	}
	verb := "loaded"
	if cmd == "ccheck" {
		verb = "checked"
	}
	fmt.Printf("%s %d keys (map v%d, %d wrong-shard retries, %d map refetches)\n",
		verb, *n, cc.Map().Version, cc.Retries(), cc.Refetches())
	if bad > 0 {
		fatalf("%d keys missing or wrong", bad)
	}
}

// parseSlots expands "3", "0-63", and comma-joined mixes of both.
func parseSlots(args []string) ([]uint32, error) {
	var out []uint32
	for _, arg := range args {
		for _, part := range strings.Split(arg, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			lo, hi, ranged := strings.Cut(part, "-")
			l, err := strconv.ParseUint(lo, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("bad slot %q: %w", part, err)
			}
			h := l
			if ranged {
				if h, err = strconv.ParseUint(hi, 10, 32); err != nil {
					return nil, fmt.Errorf("bad slot range %q: %w", part, err)
				}
				if h < l {
					return nil, fmt.Errorf("bad slot range %q: empty", part)
				}
			}
			for s := l; s <= h; s++ {
				out = append(out, uint32(s))
			}
		}
	}
	if len(out) == 0 {
		return nil, errors.New("no slots given")
	}
	return out, nil
}

// formatSlots renders a slot set compactly as ranges: "0-3,8,10-11".
func formatSlots(slots []uint32) string {
	if len(slots) == 0 {
		return "-"
	}
	var b strings.Builder
	for i := 0; i < len(slots); {
		j := i
		for j+1 < len(slots) && slots[j+1] == slots[j]+1 {
			j++
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		if j > i {
			fmt.Fprintf(&b, "%d-%d", slots[i], slots[j])
		} else {
			fmt.Fprintf(&b, "%d", slots[i])
		}
		i = j + 1
	}
	return b.String()
}

func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
