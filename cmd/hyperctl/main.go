// Command hyperctl inspects a live HyperDB: it loads a configurable
// workload into a fresh instance over simulated devices and dumps the
// engine's internal state — zones per partition, LSM level occupancy,
// per-tier traffic, cache efficiency — the view an operator would use to
// understand where data lives and what the background tasks are doing.
// It also speaks the wire protocol to a running hyperd.
//
// Local subcommands (in-process instance):
//
//	hyperctl demo    [-records N] [-ops N] [-skew T]   load + inspect
//	hyperctl devices                                    print device profiles
//	hyperctl trace   [-seconds S]                       bandwidth timeline
//	hyperctl recover [-records N]                       crash + recovery demo
//
// Remote subcommands (against hyperd, all take -addr):
//
//	hyperctl ping
//	hyperctl put  <key> <value>
//	hyperctl get  <key>
//	hyperctl mget <key>...
//	hyperctl del  <key>
//	hyperctl incr <key> [delta]    counter merge; delta defaults to 1
//	hyperctl scan [-limit N] [start]
//	hyperctl stats
//	hyperctl repl status   replication role, log window, per-follower lag
//	hyperctl ryw           live read-your-writes probe through a session
//	hyperctl badframe      send deliberately malformed bytes (protocol test)
//
// Cluster subcommands (against a sharded deployment, see DESIGN.md §cluster):
//
//	hyperctl shardmap [-addr A]                 print a node's shard map
//	hyperctl handoff -target A <slots>          move slots onto the target node
//	hyperctl cload  -seeds A,B [-n N]           load keys through shard routing
//	hyperctl ccheck -seeds A,B [-n N]           verify every loaded key
//
// put/get/mget/del/scan also take session flags: -policy primary|bounded|any
// routes reads through follower addresses given with -followers, carrying
// the session token (seed it across invocations with -token); the serving
// node and updated token print to stderr. `ryw` loops put-then-get through
// one session and fails on any stale read.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"hyperdb"
	"hyperdb/internal/device"
	"hyperdb/internal/stats"
	"hyperdb/internal/ycsb"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "demo":
		demo(os.Args[2:])
	case "devices":
		devices()
	case "trace":
		trace(os.Args[2:])
	case "recover":
		recoverDemo(os.Args[2:])
	case "ping", "put", "get", "mget", "del", "incr", "scan", "stats", "badframe":
		remote(os.Args[1], os.Args[2:])
	case "ryw":
		rywCmd(os.Args[2:])
	case "repl":
		replCmd(os.Args[2:])
	case "shardmap", "handoff", "cload", "ccheck":
		clusterCmd(os.Args[1], os.Args[2:])
	default:
		usage()
	}
}

// recoverDemo loads a dataset, simulates a crash (abandons the instance
// without any shutdown), recovers from the devices, and verifies the data.
func recoverDemo(args []string) {
	fs := flag.NewFlagSet("recover", flag.ExitOnError)
	records := fs.Int64("records", 100_000, "records to load before the crash")
	fs.Parse(args)

	nvme := device.New(device.NVMeProfile(8 << 20))
	sata := device.New(device.SATAProfile(2 << 30))
	opts := hyperdb.Options{NVMeDevice: nvme, SATADevice: sata, Partitions: 4}

	db, err := hyperdb.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("writing %d records across both tiers...\n", *records)
	rng := rand.New(rand.NewSource(9))
	for i := int64(0); i < *records; i++ {
		if err := db.Put(ycsb.Key(i), ycsb.Value(rng, 128)); err != nil {
			fmt.Fprintln(os.Stderr, "put:", err)
			os.Exit(1)
		}
	}
	st := db.Stats()
	fmt.Printf("pre-crash: %d objects in NVMe zones, %d migrations to SATA\n",
		st.Zone.Objects, st.Zone.Migrations)
	db.Close()
	fmt.Println("simulated crash (in-memory state discarded)")

	t0 := time.Now()
	re, err := hyperdb.Recover(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "recover:", err)
		os.Exit(1)
	}
	defer re.Close()
	fmt.Printf("recovered in %v (slot-file scan + semi-SSTable reopen)\n", time.Since(t0))

	missing := 0
	for i := int64(0); i < *records; i += 97 {
		if _, err := re.Get(ycsb.Key(i)); err != nil {
			missing++
		}
	}
	if missing > 0 {
		fmt.Printf("VERIFY FAILED: %d sampled keys missing\n", missing)
		os.Exit(1)
	}
	fmt.Println("verify: all sampled keys present")
	rst := re.Stats()
	fmt.Printf("post-recovery: %d objects in NVMe zones across %d zones\n",
		rst.Zone.Objects, rst.Zone.Zones)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hyperctl <demo|devices|trace|recover|ping|put|get|mget|del|incr|scan|stats|repl|ryw|badframe|shardmap|handoff|cload|ccheck> [flags]")
	os.Exit(2)
}

func demo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	records := fs.Int64("records", 200_000, "records to load")
	ops := fs.Int64("ops", 100_000, "YCSB-B ops to run after load")
	skew := fs.Float64("skew", 0.99, "zipfian theta (0 = uniform)")
	nvme := fs.Int64("nvme", 16<<20, "NVMe capacity bytes")
	fs.Parse(args)

	db, err := hyperdb.Open(hyperdb.Options{
		NVMeCapacity: *nvme,
		SATACapacity: 4 << 30,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Printf("loading %d records...\n", *records)
	rng := rand.New(rand.NewSource(42))
	gen := ycsb.NewGenerator(ycsb.WorkloadB.WithTheta(*skew), *records, 128, 42)
	for i := int64(0); i < *records; i++ {
		if err := db.Put(ycsb.Key(i), ycsb.Value(rng, 128)); err != nil {
			fmt.Fprintln(os.Stderr, "put:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("running %d YCSB-B ops (theta %.2f)...\n", *ops, *skew)
	for i := int64(0); i < *ops; i++ {
		op := gen.Next()
		switch op.Type {
		case ycsb.OpRead:
			db.Get(op.Key)
		default:
			db.Put(op.Key, op.Value)
		}
	}
	db.DrainBackground()
	fmt.Println("\n=== engine state ===")
	fmt.Print(db.Stats())
}

func devices() {
	for _, p := range []device.Profile{device.NVMeProfile(960 << 30), device.SATAProfile(960 << 30)} {
		fmt.Printf("%s: page=%dB sector=%dB readLat=%v writeLat=%v readBW=%s/s writeBW=%s/s channels=%d seqDiscount=%d\n",
			p.Name, p.PageSize, p.SectorSize, p.ReadLatency, p.WriteLatency,
			stats.FormatBytes(uint64(p.ReadBandwidth)), stats.FormatBytes(uint64(p.WriteBandwidth)),
			p.Channels, p.SeqDiscount)
	}
}

func trace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	seconds := fs.Int("seconds", 5, "trace duration")
	fs.Parse(args)

	db, err := hyperdb.Open(hyperdb.Options{NVMeCapacity: 8 << 20, SATACapacity: 1 << 30})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()

	nvmeSampler := stats.NewBandwidthSampler(db.NVMe().Counters(), 200*time.Millisecond)
	sataSampler := stats.NewBandwidthSampler(db.SATA().Counters(), 200*time.Millisecond)

	stop := time.After(time.Duration(*seconds) * time.Second)
	gen := ycsb.NewGenerator(ycsb.WorkloadA, 1<<20, 128, 1)
	i := int64(0)
loop:
	for {
		select {
		case <-stop:
			break loop
		default:
		}
		op := gen.Next()
		if op.Type == ycsb.OpRead {
			db.Get(op.Key)
		} else {
			db.Put(op.Key, op.Value)
		}
		i++
	}
	fmt.Printf("ran %d ops\n", i)
	fmt.Println("t(ms)  nvmeR(MiB/s) nvmeW  sataR  sataW")
	nv := nvmeSampler.Stop()
	sa := sataSampler.Stop()
	for j := 0; j < len(nv) && j < len(sa); j++ {
		fmt.Printf("%6d %9.1f %6.1f %6.1f %6.1f\n",
			(j+1)*200,
			nv[j].ReadBps/(1<<20), nv[j].WriteBps/(1<<20),
			sa[j].ReadBps/(1<<20), sa[j].WriteBps/(1<<20))
	}
}
