// Command hyperd serves a HyperDB instance over TCP with the wire
// protocol. Pipelined client writes coalesce into engine WriteBatch calls
// and point reads into MultiGet — the server turns network concurrency
// into the batch hot path's group commits.
//
// The storage devices are simulated (as everywhere in this repository), so
// a hyperd's data lives for the life of the process: it is a serving
// harness for the engine, not a persistence daemon.
//
//	hyperd -addr :4980 -partitions 8 -nvme 268435456 -sata 8589934592
//
// Replication: -role=primary ships a sequence-tagged op log to followers
// that attach with REPL_HELLO; -role=follower dials -upstream, applies the
// stream (bootstrapping via snapshot when it has fallen off the retained
// window), rejects foreground writes, and re-ships its own log so further
// replicas can chain off it. SIGHUP promotes a follower to primary: the
// applier stops and the node starts accepting writes.
//
//	hyperd -addr :4980 -role primary -repl-sync
//	hyperd -addr :4981 -role follower -upstream 127.0.0.1:4980
//
// Followers serve session (v2) reads: a read carrying a session token is
// answered once the node has applied that position, waiting up to
// -read-wait before refusing with NOT_READY so the client retries on the
// primary. See hyperctl's -policy flag and DESIGN.md §follower reads.
//
// SIGINT/SIGTERM trigger the graceful sequence: stop accepting, drain
// in-flight requests, flush responses, DrainBackground, Close. Exit code 0
// means every acknowledged write reached the engine before exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/cluster"
	"hyperdb/internal/hotness"
	"hyperdb/internal/repl"
	"hyperdb/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:4980", "TCP listen address")
		partitions  = flag.Int("partitions", 8, "shared-nothing partition count")
		nvme        = flag.Int64("nvme", 256<<20, "NVMe (performance tier) capacity bytes")
		sata        = flag.Int64("sata", 8<<30, "SATA (capacity tier) capacity bytes")
		cacheBytes  = flag.Int64("cache", 64<<20, "DRAM page-cache budget bytes")
		unthrottled = flag.Bool("unthrottled", false, "zero-latency devices (testing)")
		maxConns    = flag.Int("max-conns", 256, "max concurrent connections")
		maxInflight = flag.Int("max-inflight", 128, "per-connection pipelining window")
		linger      = flag.Duration("coalesce-wait", 0, "optional drain linger for fatter batches")
		maxScan     = flag.Int("max-scan", 4096, "cap on per-request scan limits")
		quiet       = flag.Bool("quiet", false, "suppress connection logging")
		role        = flag.String("role", "", "replication role: empty (standalone), primary, or follower")
		upstream    = flag.String("upstream", "", "primary address to replicate from (follower role)")
		replSync    = flag.Bool("repl-sync", false, "writes wait for every attached follower's ack")
		replEntries = flag.Int("repl-log-entries", 0, "retained replication log entries (0 = default)")
		replAckWait = flag.Duration("repl-ack-timeout", 0, "synchronous-ack wait before evicting a stalled follower (0 = default, negative = forever)")
		antiEntropy = flag.Bool("anti-entropy", false, "maintain a Merkle tree so diverged replicas rejoin via O(divergence) range repair")
		compressArg = flag.String("compress", "", "capacity-tier block codec: off (default) or on/lz; the NVMe zone tier always stays raw")
		compressMin = flag.Int("compress-min-level", 0, "shallowest LSM level the codec applies to (0 = default 1)")
		readWait    = flag.Duration("read-wait", 0, "max wait for a session read's token before NOT_READY (0 = default)")
		connRate    = flag.Float64("conn-rate", 0, "per-connection request rate limit in ops/sec (0 = unlimited)")
		connBurst   = flag.Int("conn-burst", 0, "per-connection rate-limit burst (0 = max(1, conn-rate))")
		hotMode     = flag.String("hotness", "bloom", "hotness tracker mode: bloom (paper-faithful) or sketch (O(1) memory at huge key counts)")
		peers       = flag.String("cluster", "", "comma-separated group addresses (all shard primaries, including this node) — enables cluster mode")
		clusterSelf = flag.String("cluster-self", "", "this node's address as listed in -cluster (default: -addr)")
		slots       = flag.Int("slots", cluster.DefaultSlots, "shard slot count (must match across the cluster)")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "hyperd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}
	switch *role {
	case "", "primary", "follower":
	default:
		fmt.Fprintf(os.Stderr, "hyperd: -role must be primary or follower, got %q\n", *role)
		os.Exit(2)
	}
	if *role == "follower" && *upstream == "" {
		fmt.Fprintln(os.Stderr, "hyperd: -role follower requires -upstream")
		os.Exit(2)
	}
	if *peers != "" && *role == "follower" {
		fmt.Fprintln(os.Stderr, "hyperd: -cluster nodes are shard primaries; -role follower is incompatible")
		os.Exit(2)
	}

	switch hotness.Mode(*hotMode) {
	case hotness.ModeBloom, hotness.ModeSketch:
	default:
		fmt.Fprintf(os.Stderr, "hyperd: -hotness must be %q or %q, got %q\n",
			hotness.ModeBloom, hotness.ModeSketch, *hotMode)
		os.Exit(2)
	}
	opts := hyperdb.Options{
		Partitions:       *partitions,
		NVMeCapacity:     *nvme,
		SATACapacity:     *sata,
		CacheBytes:       *cacheBytes,
		Unthrottled:      *unthrottled,
		Follower:         *role == "follower",
		Compress:         *compressArg,
		CompressMinLevel: *compressMin,
		AntiEntropy:      *antiEntropy,
	}
	opts.Tracker.Mode = hotness.Mode(*hotMode)
	// Any replicating role ships a log: a primary feeds its followers, and
	// a follower re-ships what it applies so replicas can chain — and so it
	// has a live log the moment it is promoted.
	// Cluster nodes always tee a log too: slot handoff streams from it.
	var rlog *repl.Log
	if *role != "" || *peers != "" {
		rlog = repl.NewLog(repl.LogConfig{MaxEntries: *replEntries, SyncAck: *replSync, AckTimeout: *replAckWait})
		opts.Tee = rlog
	}
	db, err := hyperdb.Open(opts)
	if err != nil {
		log.Fatalf("hyperd: open engine: %v", err)
	}

	logf := log.Printf
	if *quiet {
		logf = nil
	}
	cfg := server.Config{
		DB:           db,
		OwnDB:        true, // Shutdown drains background work and closes the DB
		MaxConns:     *maxConns,
		MaxInflight:  *maxInflight,
		CoalesceWait: *linger,
		MaxScanLimit: *maxScan,
		ReadWait:     *readWait,
		ConnRate:     *connRate,
		ConnBurst:    *connBurst,
		Logf:         logf,
	}
	// A follower serves session reads under the lineage it applies from —
	// the upstream's epoch — not its own chaining log's epoch, which names
	// the lineage it would ship after a promotion. The promotion itself
	// flips IsFollower, switching the node to its own epoch.
	var fol *repl.Follower
	if *role == "follower" {
		fol = &repl.Follower{DB: db, Log: rlog, Tree: db.MerkleTree()}
	}
	if rlog != nil {
		cfg.Repl = &repl.Primary{DB: db, Log: rlog, Tree: db.MerkleTree()}
		cfg.Epoch = func() uint64 {
			if fol != nil && db.IsFollower() {
				return fol.Epoch()
			}
			return rlog.Epoch()
		}
	}
	if *peers != "" {
		var groups []string
		for _, a := range strings.Split(*peers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				groups = append(groups, a)
			}
		}
		self := *clusterSelf
		if self == "" {
			self = *addr
		}
		m, err := cluster.New(*slots, groups)
		if err != nil {
			db.Close()
			log.Fatalf("hyperd: -cluster: %v", err)
		}
		g := m.GroupOf(self)
		if g < 0 {
			db.Close()
			log.Fatalf("hyperd: -cluster does not list this node (%s); set -cluster-self", self)
		}
		node, err := cluster.NewNode(m, uint32(g))
		if err != nil {
			db.Close()
			log.Fatalf("hyperd: -cluster: %v", err)
		}
		cfg.Cluster = node
	}
	srv, err := server.New(cfg)
	if err != nil {
		db.Close()
		log.Fatalf("hyperd: %v", err)
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		db.Close()
		log.Fatalf("hyperd: listen: %v", err)
	}
	roleDesc := "standalone"
	if *role != "" {
		roleDesc = *role
	}
	if *peers != "" {
		roleDesc = fmt.Sprintf("cluster shard %d/%d (%d slots)",
			cfg.Cluster.Self(), len(cfg.Cluster.Map().Groups), *slots)
	}
	log.Printf("hyperd: serving on %s as %s (%d partitions, NVMe %d MiB, SATA %d MiB)",
		bound, roleDesc, *partitions, *nvme>>20, *sata>>20)

	// The follower applier: dial the upstream, attach, apply the stream;
	// redial with capped backoff when the upstream goes away.
	applierStop := make(chan struct{})
	applierDone := make(chan struct{})
	var stopApplier = func() {}
	if *role == "follower" {
		go runApplier(fol, *upstream, applierStop, applierDone)
		var once sync.Once
		stopApplier = func() {
			once.Do(func() {
				close(applierStop)
				<-applierDone
			})
		}
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	var sig os.Signal
	for {
		sig = <-sigCh
		if sig != syscall.SIGHUP {
			break
		}
		if !db.IsFollower() {
			log.Printf("hyperd: SIGHUP ignored (not a follower)")
			continue
		}
		stopApplier()
		db.Promote()
		log.Printf("hyperd: promoted to primary (applier stopped, accepting writes)")
	}
	log.Printf("hyperd: %s received, draining...", sig)
	stopApplier()
	// A second signal while draining force-exits; the deferred Close race
	// this used to create is why DB.Close is concurrency-safe.
	go func() {
		s := <-sigCh
		log.Printf("hyperd: %s received again, forcing exit", s)
		db.Close()
		os.Exit(1)
	}()

	t0 := time.Now()
	if err := srv.Shutdown(); err != nil {
		log.Printf("hyperd: shutdown: %v", err)
		os.Exit(1)
	}
	st := srv.Stats()
	log.Printf("hyperd: drained in %v (%d conns served, %d write batches, mean %0.2f ops/batch)",
		time.Since(t0).Round(time.Millisecond), st.ConnsAccepted.Load(),
		st.WriteBatches.Load(), st.MeanWriteBatch())
}

// runApplier keeps a follower attached to its upstream: dial, REPL_HELLO at
// the node's applied sequence, apply the stream until it breaks, then redial
// with capped exponential backoff. Each reattach resumes from CommitSeq, so
// a follower that fell off the retained window during an outage bootstraps
// again via snapshot automatically.
func runApplier(fol *repl.Follower, upstream string, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	var bo client.Backoff
	wait := func() bool {
		select {
		case <-stop:
			return false
		case <-time.After(bo.Next()):
			return true
		}
	}
	for {
		select {
		case <-stop:
			return
		default:
		}
		nc, err := net.DialTimeout("tcp", upstream, 5*time.Second)
		if err != nil {
			log.Printf("hyperd: dial upstream %s: %v", upstream, err)
			if !wait() {
				return
			}
			continue
		}
		bo.Reset()
		log.Printf("hyperd: attached to upstream %s at seq %d", upstream, fol.DB.CommitSeq())
		if err := fol.Run(nc, stop); err != nil {
			log.Printf("hyperd: replication stream: %v", err)
		}
		select {
		case <-stop:
			return
		default:
		}
		if !wait() {
			return
		}
	}
}
