// Command hyperd serves a HyperDB instance over TCP with the wire
// protocol. Pipelined client writes coalesce into engine WriteBatch calls
// and point reads into MultiGet — the server turns network concurrency
// into the batch hot path's group commits.
//
// The storage devices are simulated (as everywhere in this repository), so
// a hyperd's data lives for the life of the process: it is a serving
// harness for the engine, not a persistence daemon.
//
//	hyperd -addr :4980 -partitions 8 -nvme 268435456 -sata 8589934592
//
// SIGINT/SIGTERM trigger the graceful sequence: stop accepting, drain
// in-flight requests, flush responses, DrainBackground, Close. Exit code 0
// means every acknowledged write reached the engine before exit.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hyperdb"
	"hyperdb/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:4980", "TCP listen address")
		partitions  = flag.Int("partitions", 8, "shared-nothing partition count")
		nvme        = flag.Int64("nvme", 256<<20, "NVMe (performance tier) capacity bytes")
		sata        = flag.Int64("sata", 8<<30, "SATA (capacity tier) capacity bytes")
		cacheBytes  = flag.Int64("cache", 64<<20, "DRAM page-cache budget bytes")
		unthrottled = flag.Bool("unthrottled", false, "zero-latency devices (testing)")
		maxConns    = flag.Int("max-conns", 256, "max concurrent connections")
		maxInflight = flag.Int("max-inflight", 128, "per-connection pipelining window")
		linger      = flag.Duration("coalesce-wait", 0, "optional drain linger for fatter batches")
		maxScan     = flag.Int("max-scan", 4096, "cap on per-request scan limits")
		quiet       = flag.Bool("quiet", false, "suppress connection logging")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "hyperd: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	db, err := hyperdb.Open(hyperdb.Options{
		Partitions:   *partitions,
		NVMeCapacity: *nvme,
		SATACapacity: *sata,
		CacheBytes:   *cacheBytes,
		Unthrottled:  *unthrottled,
	})
	if err != nil {
		log.Fatalf("hyperd: open engine: %v", err)
	}

	logf := log.Printf
	if *quiet {
		logf = nil
	}
	srv, err := server.New(server.Config{
		DB:           db,
		OwnDB:        true, // Shutdown drains background work and closes the DB
		MaxConns:     *maxConns,
		MaxInflight:  *maxInflight,
		CoalesceWait: *linger,
		MaxScanLimit: *maxScan,
		Logf:         logf,
	})
	if err != nil {
		db.Close()
		log.Fatalf("hyperd: %v", err)
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		db.Close()
		log.Fatalf("hyperd: listen: %v", err)
	}
	log.Printf("hyperd: serving on %s (%d partitions, NVMe %d MiB, SATA %d MiB)",
		bound, *partitions, *nvme>>20, *sata>>20)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	log.Printf("hyperd: %s received, draining...", sig)
	// A second signal while draining force-exits; the deferred Close race
	// this used to create is why DB.Close is concurrency-safe.
	go func() {
		s := <-sigCh
		log.Printf("hyperd: %s received again, forcing exit", s)
		db.Close()
		os.Exit(1)
	}()

	t0 := time.Now()
	if err := srv.Shutdown(); err != nil {
		log.Printf("hyperd: shutdown: %v", err)
		os.Exit(1)
	}
	st := srv.Stats()
	log.Printf("hyperd: drained in %v (%d conns served, %d write batches, mean %0.2f ops/batch)",
		time.Since(t0).Round(time.Millisecond), st.ConnsAccepted.Load(),
		st.WriteBatches.Load(), st.MeanWriteBatch())
}
