package hyperdb_test

import (
	"fmt"

	"hyperdb"
)

// Example demonstrates the basic lifecycle: open over simulated devices,
// write, read, scan, and inspect which tier absorbed the traffic.
func Example() {
	db, err := hyperdb.Open(hyperdb.Options{
		Unthrottled:  true, // deterministic output: no timing model
		NVMeCapacity: 16 << 20,
		SATACapacity: 1 << 30,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	db.Put([]byte("user:1001"), []byte("alice"))
	db.Put([]byte("user:1002"), []byte("bob"))
	v, _ := db.Get([]byte("user:1001"))
	fmt.Println("user:1001 =", string(v))

	kvs, _ := db.Scan([]byte("user:"), 10)
	fmt.Println("scan found", len(kvs), "users")

	db.Delete([]byte("user:1002"))
	if _, err := db.Get([]byte("user:1002")); err == hyperdb.ErrNotFound {
		fmt.Println("user:1002 deleted")
	}
	// Output:
	// user:1001 = alice
	// scan found 2 users
	// user:1002 deleted
}
