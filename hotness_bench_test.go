// Standalone hotness-tracker benchmarks sweeping key cardinality, the
// evidence behind the sketch mode's O(1)-memory claim: bloom windows are
// sized from WindowCapacity so their footprint grows linearly with the key
// population, while sketch windows saturate at the width cap and stay flat
// from 10⁶ through 10⁸ keys. ns/op for Record and IsHot are measured at 8
// concurrent goroutines — the tracker's production concurrency inside a
// loaded partition. CI runs the 1M-key subtests with -benchtime=1x as a
// smoke test plus an executable O(1) check; BENCH_hotness.json records the
// measured trajectory.
package hyperdb_test

import (
	"fmt"
	"testing"

	"hyperdb/internal/hotness"
	"hyperdb/internal/ycsb"
)

var hotnessCards = []struct {
	label string
	n     int64
}{
	{"1M", 1_000_000},
	{"10M", 10_000_000},
	{"100M", 100_000_000},
}

var hotnessModes = []hotness.Mode{hotness.ModeBloom, hotness.ModeSketch}

// hotnessTracker sizes a tracker the way core does for a partition whose
// NVMe share holds card/4 objects: the 4-deep cascade collectively spans
// the key population, so windows turn over and classification engages.
func hotnessTracker(mode hotness.Mode, card int64) *hotness.Tracker {
	return hotness.NewTracker(hotness.Config{
		Mode:           mode,
		WindowCapacity: int(card / 4),
		Stripes:        8,
	})
}

func BenchmarkHotnessRecord(b *testing.B) {
	for _, mode := range hotnessModes {
		for _, c := range hotnessCards {
			b.Run(fmt.Sprintf("%s/keys=%s/g=8", mode, c.label), func(b *testing.B) {
				tr := hotnessTracker(mode, c.n)
				card := c.n
				runHotPath(b, 8, func(i int) {
					tr.Record(ycsb.Key(int64(i) % card))
				})
				b.ReportMetric(float64(tr.FullMemoryBytes()), "fullMemB")
				b.ReportMetric(float64(tr.SealedWindows()), "seals")
			})
		}
	}
}

func BenchmarkHotnessIsHot(b *testing.B) {
	for _, mode := range hotnessModes {
		for _, c := range hotnessCards {
			b.Run(fmt.Sprintf("%s/keys=%s/g=8", mode, c.label), func(b *testing.B) {
				tr := hotnessTracker(mode, c.n)
				card := c.n
				// One pass over the key population seals ~4 windows, so the
				// classify scan below runs against a full cascade.
				for i := int64(0); i < card; i++ {
					tr.Record(ycsb.Key(i))
				}
				if tr.CascadeDepth() == 0 {
					b.Fatal("prefill sealed no windows")
				}
				runHotPath(b, 8, func(i int) {
					tr.IsHot(ycsb.Key(int64(i) % card))
				})
				b.ReportMetric(float64(tr.FullMemoryBytes()), "fullMemB")
			})
		}
	}
}
