// End-to-end throughput benchmark for sharded serving: a 1- or 2-shard
// cluster over real TCP serves a uniform 90/10 GET/PUT mix through routing
// clients, which send every key directly to the node owning its slot. The
// devices use the same read-constrained NVMe profile as the follower-read
// benchmark, so each node is bound by its simulated read channels, not host
// CPU — the regime where sharding pays: capacity grows with every shard
// because each one serves a disjoint slice of the keyspace. CI runs these
// with -benchtime=1x as a smoke test; BENCH_cluster.json records the
// measured 1→2 shard trajectory.
package hyperdb_test

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/cluster"
	"hyperdb/internal/device"
	"hyperdb/internal/repl"
	"hyperdb/internal/server"
	"hyperdb/internal/ycsb"
)

const (
	clusterBenchKeys    = 1 << 14
	clusterBenchValue   = 128
	clusterBenchClients = 12
	clusterBenchSlots   = 64
)

type shardBenchNode struct {
	db   *hyperdb.DB
	srv  *server.Server
	addr string
}

// benchClusterNodes stands up an n-shard cluster: listeners are bound first
// so the shared map can name every address, then each node serves a full
// stack (engine + teed log + shard-aware server) off its listener.
func benchClusterNodes(b *testing.B, n int) ([]*shardBenchNode, *cluster.Map) {
	b.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	m, err := cluster.New(clusterBenchSlots, addrs)
	if err != nil {
		b.Fatal(err)
	}
	nodes := make([]*shardBenchNode, n)
	for i := range nodes {
		node, err := cluster.NewNode(m, uint32(i))
		if err != nil {
			b.Fatal(err)
		}
		log := repl.NewLog(repl.LogConfig{})
		p := device.NVMeProfile(256 << 20)
		p.ReadLatency = 2 * time.Millisecond
		p.Channels = 2
		opts := hyperdb.Options{
			Partitions: 4,
			NVMeDevice: device.New(p),
			SATADevice: device.New(device.SATAProfile(1 << 30)),
			CacheBytes: 1 << 20, // small: keep reads on the simulated device
			Tee:        log,
		}
		db, err := hyperdb.Open(opts)
		if err != nil {
			b.Fatal(err)
		}
		cfg := server.Config{
			DB:      db,
			OwnDB:   true,
			Repl:    &repl.Primary{DB: db, Log: log},
			Epoch:   log.Epoch,
			Cluster: node,
		}
		srv, err := server.New(cfg)
		if err != nil {
			db.Close()
			b.Fatal(err)
		}
		go srv.Serve(lns[i])
		nodes[i] = &shardBenchNode{db: db, srv: srv, addr: addrs[i]}
	}
	return nodes, m
}

// BenchmarkClusterShards is the acceptance metric: uniform keyed throughput
// as the cluster grows from one shard to two. ns/op is per mixed operation;
// its inverse is the aggregate ops/s the cluster sustained.
func BenchmarkClusterShards(b *testing.B) {
	for _, shards := range []int{1, 2} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchClusterShards(b, shards)
		})
	}
}

func benchClusterShards(b *testing.B, shards int) {
	nodes, m := benchClusterNodes(b, shards)
	defer func() {
		for _, n := range nodes {
			n.srv.Shutdown()
		}
	}()

	// Preload each shard's slice of the keyspace directly through its
	// engine — the same placement the routing clients will compute.
	v := make([]byte, clusterBenchValue)
	for i := range v {
		v[i] = byte('a' + i%26)
	}
	batches := make([][]hyperdb.BatchOp, shards)
	for i := int64(0); i < clusterBenchKeys; i++ {
		k := ycsb.Key(i)
		g := m.OwnerGroup(m.SlotOf(k))
		batches[g] = append(batches[g], hyperdb.BatchOp{Key: k, Value: v})
	}
	for g, ops := range batches {
		const chunk = 512
		for lo := 0; lo < len(ops); lo += chunk {
			hi := min(lo+chunk, len(ops))
			if err := nodes[g].db.WriteBatch(ops[lo:hi]); err != nil {
				b.Fatal(err)
			}
		}
	}

	// One routing client per goroutine, each with its own connections.
	seeds := make([]string, len(nodes))
	for i, n := range nodes {
		seeds[i] = n.addr
	}
	ccs := make([]*client.Cluster, clusterBenchClients)
	for i := range ccs {
		cc, err := client.DialCluster(client.ClusterOptions{Seeds: seeds})
		if err != nil {
			b.Fatal(err)
		}
		defer cc.Close()
		ccs[i] = cc
	}

	b.ResetTimer()
	var next atomic.Int64
	var failed atomic.Int64
	var wg sync.WaitGroup
	wg.Add(clusterBenchClients)
	for t := 0; t < clusterBenchClients; t++ {
		go func(t int) {
			defer wg.Done()
			cc := ccs[t]
			rng := rand.New(rand.NewSource(int64(2000 + t)))
			const grab = 16
			for {
				lo := int(next.Add(grab)) - grab
				if lo >= b.N {
					return
				}
				hi := min(lo+grab, b.N)
				for i := lo; i < hi; i++ {
					key := ycsb.Key(int64(rng.Intn(clusterBenchKeys)))
					if i%10 == 9 {
						if err := cc.Put(key, v); err != nil {
							failed.Add(1)
						}
					} else if _, err := cc.Get(key); err != nil {
						failed.Add(1)
					}
				}
			}
		}(t)
	}
	wg.Wait()
	b.StopTimer()
	if n := failed.Load(); n > 0 {
		b.Fatalf("%d operations failed", n)
	}
}
