package hyperdb_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"hyperdb"
	"hyperdb/internal/device"
	"hyperdb/internal/ycsb"
)

// TestRecoverRoundtrip writes across both tiers, closes the DB, recovers
// from the same devices, and verifies every key, tombstone and follow-up
// write.
func TestRecoverRoundtrip(t *testing.T) {
	nvme := device.New(device.UnthrottledProfile("nvme", 2<<20))
	sata := device.New(device.UnthrottledProfile("sata", 1<<30))
	opts := hyperdb.Options{
		NVMeDevice:        nvme,
		SATADevice:        sata,
		Partitions:        4,
		CacheBytes:        2 << 20,
		MigrationBatch:    256 << 10,
		DisableBackground: true,
	}
	db, err := hyperdb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}

	const n = 30000
	rng := rand.New(rand.NewSource(5))
	want := map[string][]byte{}
	for i := 0; i < n; i++ {
		k := ycsb.Key(int64(rng.Intn(n)))
		v := make([]byte, 32+rng.Intn(128))
		rng.Read(v)
		if err := db.Put(k, v); err != nil {
			t.Fatalf("put: %v", err)
		}
		want[string(k)] = v
	}
	// Some deletions, including of keys already demoted.
	deleted := map[string]bool{}
	for i := 0; i < n; i += 37 {
		k := ycsb.Key(int64(i))
		if err := db.Delete(k); err != nil {
			t.Fatalf("delete: %v", err)
		}
		delete(want, string(k))
		deleted[string(k)] = true
	}
	if err := db.DrainBackground(); err != nil {
		t.Fatal(err)
	}
	preStats := db.Stats()
	if preStats.Zone.Migrations == 0 {
		t.Fatal("test setup: no data reached the capacity tier")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Recover from the same devices.
	re, err := hyperdb.Recover(opts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer re.Close()

	for k, v := range want {
		got, err := re.Get([]byte(k))
		if err != nil {
			t.Fatalf("get %x after recover: %v", k, err)
		}
		if !bytes.Equal(got, v) {
			t.Fatalf("get %x after recover: %d bytes, want %d", k, len(got), len(v))
		}
	}
	for k := range deleted {
		if _, ok := want[k]; ok {
			continue
		}
		if _, err := re.Get([]byte(k)); !errors.Is(err, hyperdb.ErrNotFound) {
			t.Fatalf("deleted key %x resurrected after recover: %v", k, err)
		}
	}

	// Scans still globally ordered across recovered tiers.
	kvs, err := re.Scan(ycsb.Key(0), 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(kvs); i++ {
		if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
			t.Fatal("recovered scan out of order")
		}
	}

	// New writes continue with monotonically increasing sequences: an
	// overwrite after recovery must win over the recovered version.
	victim := []byte(nil)
	for k := range want {
		victim = []byte(k)
		break
	}
	if err := re.Put(victim, []byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	got, err := re.Get(victim)
	if err != nil || string(got) != "post-recovery" {
		t.Fatalf("post-recovery overwrite: %q %v", got, err)
	}
	// And survives migration pressure.
	if err := re.DrainBackground(); err != nil {
		t.Fatal(err)
	}
	got, err = re.Get(victim)
	if err != nil || string(got) != "post-recovery" {
		t.Fatalf("post-recovery overwrite after drain: %q %v", got, err)
	}
}

// TestRecoverEmptyDB recovers a never-written database.
func TestRecoverEmptyDB(t *testing.T) {
	nvme := device.New(device.UnthrottledProfile("nvme", 4<<20))
	sata := device.New(device.UnthrottledProfile("sata", 64<<20))
	opts := hyperdb.Options{
		NVMeDevice: nvme, SATADevice: sata,
		Partitions: 2, DisableBackground: true,
	}
	db, err := hyperdb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	re, err := hyperdb.Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, err := re.Get([]byte("anything")); !errors.Is(err, hyperdb.ErrNotFound) {
		t.Fatalf("empty recover get: %v", err)
	}
	if err := re.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverRequiresDevices rejects recovery without device handles.
func TestRecoverRequiresDevices(t *testing.T) {
	if _, err := hyperdb.Recover(hyperdb.Options{}); err == nil {
		t.Fatal("recover without devices should fail")
	}
}

// TestRecoverIdempotent recovers twice in a row (crash during recovery).
func TestRecoverIdempotent(t *testing.T) {
	nvme := device.New(device.UnthrottledProfile("nvme", 4<<20))
	sata := device.New(device.UnthrottledProfile("sata", 256<<20))
	opts := hyperdb.Options{
		NVMeDevice: nvme, SATADevice: sata,
		Partitions: 2, MigrationBatch: 128 << 10, DisableBackground: true,
	}
	db, err := hyperdb.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		db.Put(ycsb.Key(int64(i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.DrainBackground()
	db.Close()

	r1, err := hyperdb.Recover(opts)
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	r2, err := hyperdb.Recover(opts)
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	defer r2.Close()
	for i := 0; i < 5000; i += 111 {
		v, err := r2.Get(ycsb.Key(int64(i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("get %d after double recover: %q %v", i, v, err)
		}
	}
}
