// Package hyperdb is a key-value store for heterogeneous SSD storage,
// reproducing "HyperDB: a Novel Key Value Store for Reducing Background
// Traffic in Heterogeneous SSD Storage" (ICPP 2024).
//
// HyperDB spans two storage tiers. The performance tier (NVMe) holds a
// zone-based layout: objects with adjacent keys share a zone, zones map
// onto size-classed slot files at page granularity, and small objects
// update in place. The capacity tier (SATA) holds an LSM tree of
// semi-SSTables — sorted within blocks, appendable after persistence — and
// compacts with block-granularity preemptive compaction. A per-partition
// cascading-discriminator tracker classifies hot objects, which stay in (or
// get promoted to) the performance tier's hot zones; cold zones are demoted
// in batches chosen by a cost/benefit score.
//
// The storage devices are simulated (package internal/device): page-granular
// I/O with latency/bandwidth models scaled from the paper's Samsung PM9A3 +
// Intel D3-S4610 pair, and full traffic accounting. Every engine in this
// module — HyperDB and the RocksDB-style and PrismDB-style baselines — runs
// on the same simulator, so the paper's traffic and utilisation comparisons
// reproduce apples-to-apples.
//
// Basic usage:
//
//	db, err := hyperdb.Open(hyperdb.DefaultOptions())
//	if err != nil { ... }
//	defer db.Close()
//	db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
package hyperdb

import (
	"fmt"
	"time"

	"hyperdb/internal/core"
	"hyperdb/internal/device"
	"hyperdb/internal/merkle"
)

// ErrNotFound is returned by Get when a key does not exist or was deleted.
var ErrNotFound = core.ErrNotFound

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = core.ErrClosed

// ErrFollower is returned by foreground writes on a follower-mode DB.
var ErrFollower = core.ErrFollower

// ErrNotCounter is returned by Incr (and merge batch ops) when the key's
// existing value is not a canonical 8-byte counter.
var ErrNotCounter = core.ErrNotCounter

// DB is a HyperDB instance over a pair of simulated devices.
type DB struct {
	inner *core.DB
	nvme  *device.Device
	sata  *device.Device
}

// Open creates a DB. The zero Options get paper defaults (8 partitions,
// 64 MiB DRAM cache, T=10, k=2, T_clean=0.5, 1.5× space-amp limit).
func Open(opts Options) (*DB, error) {
	resolved, nvme, sata, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	inner, err := core.Open(resolved)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner, nvme: nvme, sata: sata}, nil
}

// Recover reopens a DB from devices holding a previous instance's state
// (after Close or a simulated crash). The performance tier's index rebuilds
// by scanning slot files; the capacity tier reopens its self-describing
// semi-SSTables. Options must carry the original devices in NVMeDevice and
// SATADevice.
func Recover(opts Options) (*DB, error) {
	if opts.NVMeDevice == nil || opts.SATADevice == nil {
		return nil, fmt.Errorf("hyperdb: Recover requires the original devices")
	}
	resolved, nvme, sata, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	inner, err := core.Recover(resolved)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner, nvme: nvme, sata: sata}, nil
}

// Put writes key=value. The write is durable on the performance tier when
// Put returns.
func (db *DB) Put(key, value []byte) error { return db.inner.Put(key, value) }

// Get returns the value for key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) { return db.inner.Get(key) }

// Delete removes key. Deleting an absent key is not an error.
func (db *DB) Delete(key []byte) error { return db.inner.Delete(key) }

// Incr atomically adds delta to the counter at key and returns the
// post-merge value. Missing and deleted keys count from 0; an existing
// non-counter value fails with ErrNotCounter; results saturate at the
// int64 range. Counters are stored as canonical 8-byte little-endian
// values readable through Get.
func (db *DB) Incr(key []byte, delta int64) (int64, error) { return db.inner.Incr(key, delta) }

// CounterLen is the length of a canonical counter encoding.
const CounterLen = core.CounterLen

// EncodeCounter renders v in the canonical 8-byte little-endian counter
// encoding merges operate on.
func EncodeCounter(v int64) []byte { return core.EncodeCounter(v) }

// DecodeCounter parses a canonical counter value; any other length fails
// with ErrNotCounter.
func DecodeCounter(b []byte) (int64, error) { return core.DecodeCounter(b) }

// SatAdd adds two deltas with saturation at the int64 range — the engine's
// merge arithmetic, exported so serving layers folding deltas commit
// exactly what the engine would.
func SatAdd(a, b int64) int64 { return core.SatAdd(a, b) }

// BatchOp is one write in a WriteBatch: a put, a delete when Delete is
// set, or a counter merge when Merge is set (Delta is applied to the key's
// current value; after a successful batch the op's Value holds the
// post-merge 8-byte encoding).
type BatchOp = core.BatchOp

// WriteBatch applies the ops with batched amortisation: keys are grouped per
// partition, each partition group takes the engine's locks once, and the
// whole batch draws one sequence block. Duplicate keys resolve in slice
// order (last write wins). Not atomic across partitions: on error a prefix
// of the batch may be applied.
func (db *DB) WriteBatch(ops []BatchOp) error { return db.inner.WriteBatch(ops) }

// WriteBatchSeq is WriteBatch returning the batch's last committed
// sequence — the session token a client gates follower reads on for
// read-your-writes.
func (db *DB) WriteBatchSeq(ops []BatchOp) (uint64, error) { return db.inner.WriteBatchSeq(ops) }

// MultiGet returns values positionally aligned with keys; missing or deleted
// keys yield nil entries. Lookups are grouped per partition and share page
// reads between keys on the same slot page.
func (db *DB) MultiGet(keys [][]byte) ([][]byte, error) { return db.inner.MultiGet(keys) }

// KV is one scan result.
type KV = core.KV

// Scan returns up to limit live key-value pairs with key >= start, in key
// order, merged across both tiers.
func (db *DB) Scan(start []byte, limit int) ([]KV, error) {
	return db.inner.Scan(start, limit)
}

// Close stops background workers. The simulated devices and their contents
// remain readable through Stats until the process exits.
func (db *DB) Close() error { return db.inner.Close() }

// Stats snapshots engine and device state.
func (db *DB) Stats() core.Stats { return db.inner.Stats() }

// IsHot reports whether the hotness discriminator currently classifies key
// as hot, without recording an access.
func (db *DB) IsHot(key []byte) bool { return db.inner.IsHot(key) }

// NVMe returns the performance-tier device (for harness inspection).
func (db *DB) NVMe() *device.Device { return db.nvme }

// SATA returns the capacity-tier device (for harness inspection).
func (db *DB) SATA() *device.Device { return db.sata }

// DrainBackground blocks until pending migrations and compactions settle.
// Benchmarks call it to separate load and measurement phases.
func (db *DB) DrainBackground() error { return db.inner.DrainBackground() }

// MigrationStep and CompactionStep drive one unit of background work on one
// partition; useful with Options.DisableBackground for deterministic tests.
func (db *DB) MigrationStep(partition int) error { return db.inner.MigrationStep(partition) }

// CompactionStep runs at most one compaction for a partition.
func (db *DB) CompactionStep(partition int) (bool, error) {
	return db.inner.CompactionStep(partition)
}

// IsFollower reports whether the DB is in follower (replica) mode.
func (db *DB) IsFollower() bool { return db.inner.IsFollower() }

// Promote flips a follower to primary. The caller must have stopped the
// replication applier first; promoting a primary is a no-op.
func (db *DB) Promote() { db.inner.Promote() }

// CommitSeq returns the highest sequence number the DB has allocated (or,
// on a follower, applied).
func (db *DB) CommitSeq() uint64 { return db.inner.CommitSeq() }

// ApplyReplicated applies one shipped replication log entry on a follower;
// op i carries sequence base+i. Entries must arrive in increasing base
// order.
func (db *DB) ApplyReplicated(ops []BatchOp, base uint64) error {
	return db.inner.ApplyReplicated(ops, base)
}

// ApplySnapshotChunk applies one streamed bootstrap chunk on a follower,
// tagging every pair with the snapshot's pinned sequence.
func (db *DB) ApplySnapshotChunk(ops []BatchOp, seq uint64) error {
	return db.inner.ApplySnapshotChunk(ops, seq)
}

// ReadableSeq returns the highest sequence whose effects are visible to
// readers on this node: the allocation counter on a primary, the fully
// applied replication position on a follower.
func (db *DB) ReadableSeq() uint64 { return db.inner.ReadableSeq() }

// WaitReadable blocks until ReadableSeq reaches min, the timeout elapses,
// or abort closes, reporting whether the position was reached. The serving
// layer parks gated session reads on it.
func (db *DB) WaitReadable(min uint64, timeout time.Duration, abort <-chan struct{}) bool {
	return db.inner.WaitReadable(min, timeout, abort)
}

// GetSession, MultiGetSession and ScanSession are the session-read variants:
// alongside the result they return the node's readable sequence, sampled so
// that nothing the read observed is newer than the token.
func (db *DB) GetSession(key []byte) ([]byte, uint64, error) { return db.inner.GetSession(key) }

// MultiGetSession is MultiGet plus the session token.
func (db *DB) MultiGetSession(keys [][]byte) ([][]byte, uint64, error) {
	return db.inner.MultiGetSession(keys)
}

// ScanSession is Scan plus the session token.
func (db *DB) ScanSession(start []byte, limit int) ([]KV, uint64, error) {
	return db.inner.ScanSession(start, limit)
}

// MerkleTree returns the incremental anti-entropy tree, nil unless
// Options.AntiEntropy was set. The replication layer snapshots it to serve
// O(divergence) replica rejoin.
func (db *DB) MerkleTree() *merkle.Tree { return db.inner.MerkleTree() }

// Engine exposes the underlying core engine for advanced instrumentation.
func (db *DB) Engine() *core.DB { return db.inner }
