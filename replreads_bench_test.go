// End-to-end read-throughput benchmark for follower reads: a full wire
// cluster (primary + 0/1/2 followers over real TCP) serves a 95/5
// read/write mix through client Sessions under the bounded policy, which
// spreads gated reads round-robin across the whole group. The devices use
// a deliberately read-constrained NVMe profile so each node is bound by
// its simulated read channels, not host CPU — exactly the regime where
// follower reads pay: aggregate read capacity grows with every node that
// serves. CI runs these with -benchtime=1x as a smoke test;
// BENCH_replreads.json records the measured 1→3 node trajectory.
package hyperdb_test

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/device"
	"hyperdb/internal/repl"
	"hyperdb/internal/server"
	"hyperdb/internal/ycsb"
)

const (
	replReadKeys    = 1 << 15
	replReadValue   = 128
	replReadClients = 12 // enough session goroutines to saturate 3 nodes
)

// replReadProfile throttles reads hard (2ms service, 2 channels) while
// leaving writes cheap: read capacity ~1k/s per node, so the mix saturates
// one node and scales with replicas. Write and apply paths stay off the
// critical path.
func replReadProfile() device.Profile {
	p := device.NVMeProfile(256 << 20)
	p.ReadLatency = 2 * time.Millisecond
	p.Channels = 2
	return p
}

type replBenchNode struct {
	db   *hyperdb.DB
	srv  *server.Server
	addr string
	log  *repl.Log
}

func newReplBenchNode(b *testing.B, follower bool) *replBenchNode {
	b.Helper()
	opts := hyperdb.Options{
		Partitions: 4,
		NVMeDevice: device.New(replReadProfile()),
		SATADevice: device.New(device.SATAProfile(1 << 30)),
		// A small cache keeps most reads on the simulated device.
		CacheBytes: 1 << 20,
		Follower:   follower,
	}
	var log *repl.Log
	if !follower {
		log = repl.NewLog(repl.LogConfig{})
		opts.Tee = log
	}
	db, err := hyperdb.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	cfg := server.Config{DB: db, OwnDB: true}
	if log != nil {
		cfg.Repl = &repl.Primary{DB: db, Log: log}
	}
	srv, err := server.New(cfg)
	if err != nil {
		db.Close()
		b.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		db.Close()
		b.Fatal(err)
	}
	return &replBenchNode{db: db, srv: srv, addr: addr.String(), log: log}
}

// BenchmarkReplReads95to5 is the acceptance metric: mixed 95/5 throughput
// as the serving group grows from one node to three. ns/op is per mixed
// operation; its inverse is the aggregate ops/s the group sustained.
func BenchmarkReplReads95to5(b *testing.B) {
	for _, nFollowers := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("followers=%d", nFollowers), func(b *testing.B) {
			benchReplReads(b, nFollowers)
		})
	}
}

func benchReplReads(b *testing.B, nFollowers int) {
	prim := newReplBenchNode(b, false)
	defer prim.srv.Shutdown()
	fols := make([]*replBenchNode, nFollowers)
	stop := make(chan struct{})
	var appliers sync.WaitGroup
	for i := range fols {
		fols[i] = newReplBenchNode(b, true)
		defer fols[i].srv.Shutdown()
		nc, err := net.Dial("tcp", prim.addr)
		if err != nil {
			b.Fatal(err)
		}
		fol := &repl.Follower{DB: fols[i].db}
		appliers.Add(1)
		go func() {
			defer appliers.Done()
			fol.Run(nc, stop)
		}()
	}
	defer appliers.Wait()
	defer close(stop)

	// Preload through the engine (the log tees every batch to the attached
	// followers); then wait until every follower has applied the full load.
	v := make([]byte, replReadValue)
	for i := range v {
		v[i] = byte('a' + i%26)
	}
	const chunk = 512
	for base := int64(0); base < replReadKeys; base += chunk {
		ops := make([]hyperdb.BatchOp, 0, chunk)
		for i := base; i < base+chunk && i < replReadKeys; i++ {
			ops = append(ops, hyperdb.BatchOp{Key: ycsb.Key(i), Value: v})
		}
		if err := prim.db.WriteBatch(ops); err != nil {
			b.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for _, f := range fols {
		for f.db.CommitSeq() < prim.db.CommitSeq() {
			if time.Now().After(deadline) {
				b.Fatal("followers never caught up with the preload")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// One session per client goroutine, each with its own connections.
	sessions := make([]*client.Session, replReadClients)
	for i := range sessions {
		pc, err := client.Dial(client.Options{Addr: prim.addr, Conns: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer pc.Close()
		var fcs []*client.Client
		for _, f := range fols {
			fc, err := client.Dial(client.Options{Addr: f.addr, Conns: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer fc.Close()
			fcs = append(fcs, fc)
		}
		sessions[i] = client.NewSession(pc, fcs, client.ReadBounded)
	}

	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	var failed atomic.Int64
	wg.Add(replReadClients)
	for t := 0; t < replReadClients; t++ {
		go func(t int) {
			defer wg.Done()
			sess := sessions[t]
			rng := rand.New(rand.NewSource(int64(1000 + t)))
			const grab = 16
			for {
				lo := int(next.Add(grab)) - grab
				if lo >= b.N {
					return
				}
				hi := lo + grab
				if hi > b.N {
					hi = b.N
				}
				for i := lo; i < hi; i++ {
					key := ycsb.Key(int64(rng.Intn(replReadKeys)))
					if i%20 == 19 {
						if err := sess.Put(key, v); err != nil {
							failed.Add(1)
						}
					} else if _, err := sess.Get(key); err != nil {
						failed.Add(1)
					}
				}
			}
		}(t)
	}
	wg.Wait()
	b.StopTimer()
	if n := failed.Load(); n > 0 {
		b.Fatalf("%d operations failed", n)
	}
}
