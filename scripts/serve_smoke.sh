#!/usr/bin/env bash
# serve_smoke.sh — integration smoke for the serving subsystem: build
# hyperd + hyperctl, start the daemon, run pipelined client ops (including
# one deliberately malformed frame), then SIGTERM it and require a clean
# drain-and-shutdown exit code.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${HYPERD_ADDR:-127.0.0.1:49800}"
BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT

go build -o "$BIN/hyperd" ./cmd/hyperd
go build -o "$BIN/hyperctl" ./cmd/hyperctl

"$BIN/hyperd" -addr "$ADDR" -unthrottled -nvme $((32 << 20)) -sata $((1 << 30)) -partitions 4 &
HYPERD_PID=$!
kill_daemon() { kill "$HYPERD_PID" 2>/dev/null || true; rm -rf "$BIN"; }
trap kill_daemon EXIT

ctl() { "$BIN/hyperctl" "$1" -addr "$ADDR" "${@:2}"; }

# Wait for the listener.
for i in $(seq 1 100); do
  if ctl ping >/dev/null 2>&1; then break; fi
  if ! kill -0 "$HYPERD_PID" 2>/dev/null; then echo "hyperd died during startup" >&2; exit 1; fi
  sleep 0.1
  if [ "$i" = 100 ]; then echo "hyperd never became reachable" >&2; exit 1; fi
done

echo "== basic ops =="
ctl put alpha one
ctl put beta two
[ "$(ctl get alpha)" = "one" ]
ctl del alpha
if ctl get alpha >/dev/null 2>&1; then echo "deleted key still readable" >&2; exit 1; fi
ctl scan -limit 10
ctl stats | grep -q '^server.ops.put 2$'

echo "== pipelined load (concurrent hyperctl clients) =="
LOAD_PIDS=()
for i in $(seq 1 8); do
  ( for j in $(seq 1 25); do ctl put "k-$i-$j" "v-$i-$j" >/dev/null; done ) &
  LOAD_PIDS+=($!)
done
for pid in "${LOAD_PIDS[@]}"; do wait "$pid"; done
[ "$(ctl get k-3-7)" = "v-3-7" ]

echo "== malformed frame =="
ctl badframe
ctl ping  # the daemon must have survived the garbage

echo "== graceful shutdown =="
kill -TERM "$HYPERD_PID"
if ! wait "$HYPERD_PID"; then
  echo "hyperd exited non-zero after SIGTERM" >&2
  exit 1
fi
trap 'rm -rf "$BIN"' EXIT

echo "serve smoke OK"
