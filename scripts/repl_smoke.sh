#!/usr/bin/env bash
# repl_smoke.sh — end-to-end replication smoke: build hyperd + hyperctl,
# start a sync-ack primary and a follower replicating from it, run a
# pipelined load, verify session-consistent follower reads (read-your-writes
# probe plus a token-gated staleness assertion), SIGKILL the primary
# mid-flight, promote the follower with SIGHUP, and require every
# acknowledged key to be readable from the promoted node. Exit 0 means
# failover lost nothing that was acked and no session read was ever stale.
set -euo pipefail
cd "$(dirname "$0")/.."

PRIMARY="${HYPERD_PRIMARY:-127.0.0.1:49810}"
FOLLOWER="${HYPERD_FOLLOWER:-127.0.0.1:49811}"
BIN=$(mktemp -d)
PPID_D=""
FPID_D=""
cleanup() {
  [ -n "$PPID_D" ] && kill -9 "$PPID_D" 2>/dev/null || true
  [ -n "$FPID_D" ] && kill -9 "$FPID_D" 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/hyperd" ./cmd/hyperd
go build -o "$BIN/hyperctl" ./cmd/hyperctl

"$BIN/hyperd" -addr "$PRIMARY" -role primary -repl-sync -unthrottled \
  -nvme $((32 << 20)) -sata $((1 << 30)) -partitions 4 &
PPID_D=$!
"$BIN/hyperd" -addr "$FOLLOWER" -role follower -upstream "$PRIMARY" -unthrottled \
  -nvme $((32 << 20)) -sata $((1 << 30)) -partitions 4 &
FPID_D=$!

pctl() { "$BIN/hyperctl" "$1" -addr "$PRIMARY" "${@:2}"; }
fctl() { "$BIN/hyperctl" "$1" -addr "$FOLLOWER" "${@:2}"; }

wait_up() { # wait_up <name> <pid> <ctl-fn>
  for i in $(seq 1 100); do
    if "$3" ping >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$2" 2>/dev/null; then echo "$1 died during startup" >&2; exit 1; fi
    sleep 0.1
  done
  echo "$1 never became reachable" >&2; exit 1
}
wait_up primary "$PPID_D" pctl
wait_up follower "$FPID_D" fctl

echo "== follower attaches and roles report =="
for i in $(seq 1 100); do
  if pctl repl status | grep -q '^followers: 1$'; then break; fi
  sleep 0.1
  if [ "$i" = 100 ]; then echo "follower never attached" >&2; pctl repl status >&2; exit 1; fi
done
pctl repl status | grep -q '^role: primary$'
fctl repl status | grep -q '^role: follower$'

echo "== follower rejects foreground writes =="
if fctl put nope nope >/dev/null 2>&1; then
  echo "follower accepted a foreground write" >&2; exit 1
fi

echo "== pipelined load into the primary (sync-ack) =="
LOAD_PIDS=()
for i in $(seq 1 6); do
  ( for j in $(seq 1 25); do pctl put "rk-$i-$j" "rv-$i-$j" >/dev/null; done ) &
  LOAD_PIDS+=($!)
done
for pid in "${LOAD_PIDS[@]}"; do wait "$pid"; done
pctl del rk-1-1

echo "== lag converges to 0 after load stops =="
for i in $(seq 1 100); do
  if pctl repl status | grep -q 'lag=0$'; then break; fi
  sleep 0.1
  if [ "$i" = 100 ]; then echo "lag never converged" >&2; pctl repl status >&2; exit 1; fi
done

echo "== follower serves session reads (read-your-writes over the wire) =="
# 25 put-then-read round trips through one session under the bounded
# policy: reads spread across follower and primary, follower reads gated on
# the session token. Any stale read fails the probe.
"$BIN/hyperctl" ryw -addr "$PRIMARY" -followers "$FOLLOWER" -policy bounded -n 25

echo "== staleness assertion: token-gated follower read returns the write =="
# Write through a session (capturing the token), then read with a fresh
# session seeded from that token. The first read of a fresh session always
# routes to the follower, which must serve the just-written value — the
# gate holds it until the write has applied — and say so on stderr.
# Tokens are epoch-qualified (SEQ@EPOCH); carry the whole thing so the
# lineage check is exercised end to end, and require the epoch half.
TOK=$("$BIN/hyperctl" put -addr "$PRIMARY" -policy bounded stale-probe v2 2>&1 >/dev/null | sed -n 's/.*token \([0-9]*@[0-9]*\).*/\1/p')
[ -n "$TOK" ] || { echo "session put printed no epoch-qualified token" >&2; exit 1; }
got=$("$BIN/hyperctl" get -addr "$PRIMARY" -followers "$FOLLOWER" -policy bounded -token "$TOK" stale-probe 2>"$BIN/get.err")
if [ "$got" != "v2" ]; then
  echo "stale follower read: got '$got', want 'v2' (token $TOK)" >&2; exit 1
fi
grep -q 'served by follower\[0\]' "$BIN/get.err" || {
  echo "token-gated read was not served by the follower:" >&2
  cat "$BIN/get.err" >&2; exit 1
}

echo "== follower reports its readable position =="
applied=$(fctl stats | sed -n 's/^repl\.applied //p')
readable=$(fctl stats | sed -n 's/^repl\.readable //p')
[ -n "$readable" ] || { echo "follower stats carry no repl.readable" >&2; exit 1; }
if [ "$readable" -lt "$applied" ]; then
  echo "follower readable $readable behind applied $applied after convergence" >&2; exit 1
fi
fctl stats | grep -q '^server.repl_read_served ' || {
  echo "follower stats carry no repl_read counters" >&2; exit 1
}

echo "== SIGKILL the primary, promote the follower =="
kill -9 "$PPID_D"
wait "$PPID_D" 2>/dev/null || true
PPID_D=""
kill -HUP "$FPID_D"
for i in $(seq 1 100); do
  if fctl repl status | grep -q '^role: primary$'; then break; fi
  sleep 0.1
  if [ "$i" = 100 ]; then echo "follower never promoted" >&2; fctl repl status >&2; exit 1; fi
done

echo "== every acked key is readable from the promoted node =="
for i in $(seq 1 6); do
  for j in $(seq 1 25); do
    if [ "$i" = 1 ] && [ "$j" = 1 ]; then continue; fi
    got=$(fctl get "rk-$i-$j")
    if [ "$got" != "rv-$i-$j" ]; then
      echo "acked key rk-$i-$j lost: got '$got'" >&2; exit 1
    fi
  done
done
if fctl get rk-1-1 >/dev/null 2>&1; then
  echo "acked delete rk-1-1 resurrected" >&2; exit 1
fi

echo "== promoted node accepts new writes =="
fctl put post-failover yes
[ "$(fctl get post-failover)" = "yes" ]

echo "== promoted node serves session reads =="
"$BIN/hyperctl" ryw -addr "$FOLLOWER" -policy bounded -n 10

echo "== graceful shutdown of the promoted node =="
kill -TERM "$FPID_D"
if ! wait "$FPID_D"; then
  echo "promoted hyperd exited non-zero after SIGTERM" >&2
  exit 1
fi
FPID_D=""

echo "repl smoke OK"
