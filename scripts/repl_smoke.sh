#!/usr/bin/env bash
# repl_smoke.sh — end-to-end replication smoke: build hyperd + hyperctl,
# start a sync-ack primary and a follower replicating from it, run a
# pipelined load, verify session-consistent follower reads (read-your-writes
# probe plus a token-gated staleness assertion), SIGKILL the primary
# mid-flight, promote the follower with SIGHUP, and require every
# acknowledged key to be readable from the promoted node. Exit 0 means
# failover lost nothing that was acked and no session read was ever stale.
#
# A second act covers anti-entropy rejoin: a -anti-entropy pair where the
# follower is SIGSTOPped off the retained window while a small set of keys
# churns, then resumed — the redial must repair via the Merkle conversation,
# moving fewer bytes than the full-snapshot baseline (a fresh follower
# attached to the same primary) and converging byte-identically.
set -euo pipefail
cd "$(dirname "$0")/.."

PRIMARY="${HYPERD_PRIMARY:-127.0.0.1:49810}"
FOLLOWER="${HYPERD_FOLLOWER:-127.0.0.1:49811}"
AE_PRIMARY="${HYPERD_AE_PRIMARY:-127.0.0.1:49812}"
AE_FOLLOWER="${HYPERD_AE_FOLLOWER:-127.0.0.1:49813}"
AE_FRESH="${HYPERD_AE_FRESH:-127.0.0.1:49814}"
BIN=$(mktemp -d)
PPID_D=""
FPID_D=""
APID_D=""
AFPID_D=""
AXPID_D=""
cleanup() {
  [ -n "$PPID_D" ] && kill -9 "$PPID_D" 2>/dev/null || true
  [ -n "$FPID_D" ] && kill -9 "$FPID_D" 2>/dev/null || true
  [ -n "$AFPID_D" ] && kill -CONT "$AFPID_D" 2>/dev/null || true
  [ -n "$APID_D" ] && kill -9 "$APID_D" 2>/dev/null || true
  [ -n "$AFPID_D" ] && kill -9 "$AFPID_D" 2>/dev/null || true
  [ -n "$AXPID_D" ] && kill -9 "$AXPID_D" 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/hyperd" ./cmd/hyperd
go build -o "$BIN/hyperctl" ./cmd/hyperctl

"$BIN/hyperd" -addr "$PRIMARY" -role primary -repl-sync -unthrottled \
  -nvme $((32 << 20)) -sata $((1 << 30)) -partitions 4 &
PPID_D=$!
"$BIN/hyperd" -addr "$FOLLOWER" -role follower -upstream "$PRIMARY" -unthrottled \
  -nvme $((32 << 20)) -sata $((1 << 30)) -partitions 4 &
FPID_D=$!

pctl() { "$BIN/hyperctl" "$1" -addr "$PRIMARY" "${@:2}"; }
fctl() { "$BIN/hyperctl" "$1" -addr "$FOLLOWER" "${@:2}"; }

wait_up() { # wait_up <name> <pid> <ctl-fn>
  for i in $(seq 1 100); do
    if "$3" ping >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$2" 2>/dev/null; then echo "$1 died during startup" >&2; exit 1; fi
    sleep 0.1
  done
  echo "$1 never became reachable" >&2; exit 1
}
wait_up primary "$PPID_D" pctl
wait_up follower "$FPID_D" fctl

echo "== follower attaches and roles report =="
for i in $(seq 1 100); do
  if pctl repl status | grep -q '^followers: 1$'; then break; fi
  sleep 0.1
  if [ "$i" = 100 ]; then echo "follower never attached" >&2; pctl repl status >&2; exit 1; fi
done
pctl repl status | grep -q '^role: primary$'
fctl repl status | grep -q '^role: follower$'

echo "== follower rejects foreground writes =="
if fctl put nope nope >/dev/null 2>&1; then
  echo "follower accepted a foreground write" >&2; exit 1
fi

echo "== pipelined load into the primary (sync-ack) =="
LOAD_PIDS=()
for i in $(seq 1 6); do
  ( for j in $(seq 1 25); do pctl put "rk-$i-$j" "rv-$i-$j" >/dev/null; done ) &
  LOAD_PIDS+=($!)
done
for pid in "${LOAD_PIDS[@]}"; do wait "$pid"; done
pctl del rk-1-1

echo "== lag converges to 0 after load stops =="
for i in $(seq 1 100); do
  if pctl repl status | grep -q 'lag=0$'; then break; fi
  sleep 0.1
  if [ "$i" = 100 ]; then echo "lag never converged" >&2; pctl repl status >&2; exit 1; fi
done

echo "== follower serves session reads (read-your-writes over the wire) =="
# 25 put-then-read round trips through one session under the bounded
# policy: reads spread across follower and primary, follower reads gated on
# the session token. Any stale read fails the probe.
"$BIN/hyperctl" ryw -addr "$PRIMARY" -followers "$FOLLOWER" -policy bounded -n 25

echo "== staleness assertion: token-gated follower read returns the write =="
# Write through a session (capturing the token), then read with a fresh
# session seeded from that token. The first read of a fresh session always
# routes to the follower, which must serve the just-written value — the
# gate holds it until the write has applied — and say so on stderr.
# Tokens are epoch-qualified (SEQ@EPOCH); carry the whole thing so the
# lineage check is exercised end to end, and require the epoch half.
TOK=$("$BIN/hyperctl" put -addr "$PRIMARY" -policy bounded stale-probe v2 2>&1 >/dev/null | sed -n 's/.*token \([0-9]*@[0-9]*\).*/\1/p')
[ -n "$TOK" ] || { echo "session put printed no epoch-qualified token" >&2; exit 1; }
got=$("$BIN/hyperctl" get -addr "$PRIMARY" -followers "$FOLLOWER" -policy bounded -token "$TOK" stale-probe 2>"$BIN/get.err")
if [ "$got" != "v2" ]; then
  echo "stale follower read: got '$got', want 'v2' (token $TOK)" >&2; exit 1
fi
grep -q 'served by follower\[0\]' "$BIN/get.err" || {
  echo "token-gated read was not served by the follower:" >&2
  cat "$BIN/get.err" >&2; exit 1
}

echo "== follower reports its readable position =="
applied=$(fctl stats | sed -n 's/^repl\.applied //p')
readable=$(fctl stats | sed -n 's/^repl\.readable //p')
[ -n "$readable" ] || { echo "follower stats carry no repl.readable" >&2; exit 1; }
if [ "$readable" -lt "$applied" ]; then
  echo "follower readable $readable behind applied $applied after convergence" >&2; exit 1
fi
fctl stats | grep -q '^server.repl_read_served ' || {
  echo "follower stats carry no repl_read counters" >&2; exit 1
}

echo "== SIGKILL the primary, promote the follower =="
kill -9 "$PPID_D"
wait "$PPID_D" 2>/dev/null || true
PPID_D=""
kill -HUP "$FPID_D"
for i in $(seq 1 100); do
  if fctl repl status | grep -q '^role: primary$'; then break; fi
  sleep 0.1
  if [ "$i" = 100 ]; then echo "follower never promoted" >&2; fctl repl status >&2; exit 1; fi
done

echo "== every acked key is readable from the promoted node =="
for i in $(seq 1 6); do
  for j in $(seq 1 25); do
    if [ "$i" = 1 ] && [ "$j" = 1 ]; then continue; fi
    got=$(fctl get "rk-$i-$j")
    if [ "$got" != "rv-$i-$j" ]; then
      echo "acked key rk-$i-$j lost: got '$got'" >&2; exit 1
    fi
  done
done
if fctl get rk-1-1 >/dev/null 2>&1; then
  echo "acked delete rk-1-1 resurrected" >&2; exit 1
fi

echo "== promoted node accepts new writes =="
fctl put post-failover yes
[ "$(fctl get post-failover)" = "yes" ]

echo "== promoted node serves session reads =="
"$BIN/hyperctl" ryw -addr "$FOLLOWER" -policy bounded -n 10

echo "== graceful shutdown of the promoted node =="
kill -TERM "$FPID_D"
if ! wait "$FPID_D"; then
  echo "promoted hyperd exited non-zero after SIGTERM" >&2
  exit 1
fi
FPID_D=""

echo "== act 2: anti-entropy rejoin (tiny retained log, compressed cold tier) =="
"$BIN/hyperd" -addr "$AE_PRIMARY" -role primary -repl-sync -anti-entropy \
  -repl-log-entries 8 -repl-ack-timeout 1s -compress on -unthrottled \
  -nvme $((32 << 20)) -sata $((1 << 30)) -partitions 4 &
APID_D=$!
"$BIN/hyperd" -addr "$AE_FOLLOWER" -role follower -upstream "$AE_PRIMARY" \
  -anti-entropy -compress on -unthrottled \
  -nvme $((32 << 20)) -sata $((1 << 30)) -partitions 4 &
AFPID_D=$!
actl() { "$BIN/hyperctl" "$1" -addr "$AE_PRIMARY" "${@:2}"; }
aftl() { "$BIN/hyperctl" "$1" -addr "$AE_FOLLOWER" "${@:2}"; }
axtl() { "$BIN/hyperctl" "$1" -addr "$AE_FRESH" "${@:2}"; }
wait_up ae-primary "$APID_D" actl
wait_up ae-follower "$AFPID_D" aftl

ae_wait_lag0() { # ae_wait_lag0 <expected-follower-count> <what>
  for i in $(seq 1 150); do
    if [ "$(actl repl status | grep -c 'lag=0$')" = "$1" ]; then return 0; fi
    sleep 0.1
  done
  echo "$2: lag never converged" >&2; actl repl status >&2; exit 1
}

echo "== ae: load a dataset and let the follower tail it =="
# Distinct first bytes per writer spread the keys across Merkle leaves;
# the churn below stays inside one writer's prefix, so the repair has a
# small fraction of the leaf space to fetch.
AE_PFX=(b f j n r v z D)
AE_LOAD_PIDS=()
for i in $(seq 1 8); do
  ( p="${AE_PFX[$((i - 1))]}"
    for j in $(seq 1 25); do actl put "$p-ae-$j" "base-$i-$j" >/dev/null; done ) &
  AE_LOAD_PIDS+=($!)
done
for pid in "${AE_LOAD_PIDS[@]}"; do wait "$pid"; done
ae_wait_lag0 1 "ae initial load"

echo "== ae: full-snapshot byte baseline from a fresh follower =="
"$BIN/hyperd" -addr "$AE_FRESH" -role follower -upstream "$AE_PRIMARY" \
  -anti-entropy -compress on -unthrottled \
  -nvme $((32 << 20)) -sata $((1 << 30)) -partitions 4 &
AXPID_D=$!
wait_up ae-fresh "$AXPID_D" axtl
ae_wait_lag0 2 "fresh-follower baseline"
snap_bytes=$(actl stats | sed -n 's/^repl\.snap_bytes //p')
[ -n "$snap_bytes" ] && [ "$snap_bytes" -gt 0 ] || {
  echo "fresh follower moved no snapshot bytes (repl.snap_bytes=$snap_bytes)" >&2; exit 1
}
kill -9 "$AXPID_D"; wait "$AXPID_D" 2>/dev/null || true; AXPID_D=""

echo "== ae: stall the follower off the retained window while 10 keys churn =="
kill -STOP "$AFPID_D"
# Sync-ack + 1s ack timeout: the first churned write evicts the stalled
# follower, the rest commit immediately and truncate the 8-entry log far
# past its applied position.
for round in $(seq 1 8); do
  for j in $(seq 1 9); do actl put "b-ae-$j" "churn-$round-$j" >/dev/null; done
done
actl del b-ae-10
actl put b-ae-new brand-new >/dev/null

echo "== ae: resumed follower repairs via the Merkle conversation =="
kill -CONT "$AFPID_D"
ae_wait_lag0 1 "anti-entropy rejoin"
ae_sessions=$(actl stats | sed -n 's/^repl\.ae_sessions //p')
ae_bytes=$(actl stats | sed -n 's/^repl\.ae_bytes //p')
[ "$ae_sessions" = "1" ] || {
  echo "expected exactly one anti-entropy session, got '$ae_sessions'" >&2
  actl stats | grep '^repl\.' >&2; exit 1
}
[ -n "$ae_bytes" ] && [ "$ae_bytes" -gt 0 ] || {
  echo "anti-entropy session moved no bytes" >&2; exit 1
}
if [ "$ae_bytes" -ge "$snap_bytes" ]; then
  echo "anti-entropy moved $ae_bytes bytes, not less than the $snap_bytes full-snapshot baseline" >&2
  exit 1
fi
echo "ae repair moved $ae_bytes bytes vs $snap_bytes full-snapshot baseline"

echo "== ae: follower converged byte-identically =="
actl scan -limit 4096 > "$BIN/primary.scan"
aftl scan -limit 4096 > "$BIN/follower.scan"
cmp "$BIN/primary.scan" "$BIN/follower.scan" || {
  echo "follower scan diverges from primary after anti-entropy" >&2
  diff "$BIN/primary.scan" "$BIN/follower.scan" | head >&2; exit 1
}
grep -q '^"b-ae-new" "brand-new"$' "$BIN/follower.scan" || {
  echo "churned key b-ae-new missing from the repaired follower" >&2; exit 1
}
if grep -q '^"b-ae-10" ' "$BIN/follower.scan"; then
  echo "deleted key b-ae-10 survived the repair" >&2; exit 1
fi

echo "== ae: repaired follower still tails live writes =="
actl put post-ae yes >/dev/null
ae_wait_lag0 1 "post-repair tail"
kill -TERM "$APID_D" "$AFPID_D"
wait "$APID_D" || { echo "ae primary exited non-zero" >&2; exit 1; }
wait "$AFPID_D" || { echo "ae follower exited non-zero" >&2; exit 1; }
APID_D=""; AFPID_D=""

echo "repl smoke OK"
