#!/usr/bin/env bash
# cluster_smoke.sh — end-to-end sharded-serving smoke: build hyperd +
# hyperctl, start a 2-shard cluster, load keys through the routing client,
# move every slot of shard 0 onto shard 1 while a concurrent loader keeps
# writing, SIGKILL the drained source node after the flip, and require every
# acknowledged key to be readable through the surviving node. Exit 0 means
# the handoff lost nothing that was acked and the shard map converged.
set -euo pipefail
cd "$(dirname "$0")/.."

NODE_A="${HYPERD_SHARD_A:-127.0.0.1:49820}"
NODE_B="${HYPERD_SHARD_B:-127.0.0.1:49821}"
SLOTS=32
BIN=$(mktemp -d)
APID=""
BPID=""
cleanup() {
  [ -n "$APID" ] && kill -9 "$APID" 2>/dev/null || true
  [ -n "$BPID" ] && kill -9 "$BPID" 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN/hyperd" ./cmd/hyperd
go build -o "$BIN/hyperctl" ./cmd/hyperctl

"$BIN/hyperd" -addr "$NODE_A" -cluster "$NODE_A,$NODE_B" -slots "$SLOTS" -unthrottled \
  -nvme $((32 << 20)) -sata $((1 << 30)) -partitions 4 &
APID=$!
"$BIN/hyperd" -addr "$NODE_B" -cluster "$NODE_A,$NODE_B" -slots "$SLOTS" -unthrottled \
  -nvme $((32 << 20)) -sata $((1 << 30)) -partitions 4 &
BPID=$!

actl() { "$BIN/hyperctl" "$1" -addr "$NODE_A" "${@:2}"; }
bctl() { "$BIN/hyperctl" "$1" -addr "$NODE_B" "${@:2}"; }

wait_up() { # wait_up <name> <pid> <ctl-fn>
  for i in $(seq 1 100); do
    if "$3" ping >/dev/null 2>&1; then return 0; fi
    if ! kill -0 "$2" 2>/dev/null; then echo "$1 died during startup" >&2; exit 1; fi
    sleep 0.1
  done
  echo "$1 never became reachable" >&2; exit 1
}
wait_up shard-a "$APID" actl
wait_up shard-b "$BPID" bctl

echo "== both nodes agree on the seed map =="
actl shardmap | grep >/dev/null "^version 1, $SLOTS slots, 2 groups$"
bctl shardmap | grep >/dev/null "^version 1, $SLOTS slots, 2 groups$"
actl stats | grep >/dev/null '^cluster.self 0$'
bctl stats | grep >/dev/null '^cluster.self 1$'

echo "== load keys through the routing client =="
"$BIN/hyperctl" cload -seeds "$NODE_A,$NODE_B" -n 500 -prefix ck

echo "== both shards hold a share of the load =="
# Each shard owns half the slots, so a uniform load must land keys on both.
a_scan=$(actl scan -limit 1 | wc -l)
b_scan=$(bctl scan -limit 1 | wc -l)
[ "$a_scan" -ge 1 ] || { echo "shard a holds no keys" >&2; exit 1; }
[ "$b_scan" -ge 1 ] || { echo "shard b holds no keys" >&2; exit 1; }

echo "== handoff under load: move every slot of shard 0 onto shard 1 =="
moved=$(actl stats | sed -n 's/^cluster.slots_owned //p')
[ "$moved" -ge 1 ] || { echo "shard a owns no slots before handoff" >&2; exit 1; }
# Concurrent loader keeps writing a disjoint key range while slots move; the
# routing client must absorb every WRONG_SHARD bounce the flip causes.
"$BIN/hyperctl" cload -seeds "$NODE_A,$NODE_B" -n 300 -prefix live &
LOAD_PID=$!
slots_a=$(actl shardmap | sed -n 's/^  group 0 .* slots \(.*\)$/\1/p')
"$BIN/hyperctl" handoff -target "$NODE_B" "$slots_a" | grep >/dev/null "map version 2"
if ! wait "$LOAD_PID"; then
  echo "concurrent loader failed during handoff" >&2; exit 1
fi

echo "== map converged on both nodes, no slot double-owned =="
bctl stats | grep >/dev/null '^cluster.map_version 2$'
actl stats | grep >/dev/null '^cluster.map_version 2$'
actl stats | grep >/dev/null '^cluster.slots_owned 0$'
bctl stats | grep >/dev/null "^cluster.slots_owned $SLOTS$"

echo "== SIGKILL the drained source node after the flip =="
kill -9 "$APID"
wait "$APID" 2>/dev/null || true
APID=""

echo "== every acked key is readable through the surviving node =="
"$BIN/hyperctl" ccheck -seeds "$NODE_B" -n 500 -prefix ck
"$BIN/hyperctl" ccheck -seeds "$NODE_B" -n 300 -prefix live

echo "== surviving node accepts new writes for the whole keyspace =="
"$BIN/hyperctl" cload -seeds "$NODE_B" -n 50 -prefix post
"$BIN/hyperctl" ccheck -seeds "$NODE_B" -n 50 -prefix post

echo "== graceful shutdown of the surviving node =="
kill -TERM "$BPID"
if ! wait "$BPID"; then
  echo "surviving hyperd exited non-zero after SIGTERM" >&2
  exit 1
fi
BPID=""

echo "cluster smoke OK"
