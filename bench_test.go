// Benchmarks regenerating every table and figure of the paper's evaluation
// (§4), one testing.B benchmark per figure. Each reports the figure's rows
// through b.ReportMetric, so `go test -bench=. -benchmem` prints the same
// series the paper plots; cmd/hyperbench prints them as full text tables at
// larger scale.
//
// The scales here are reduced so the whole suite finishes in minutes; pass
// -benchscale to stretch them (e.g. go test -bench=Fig8 -benchscale=4).
package hyperdb_test

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"hyperdb/internal/harness"
	"hyperdb/internal/ycsb"
)

var benchScale = flag.Float64("benchscale", 1.0, "multiply benchmark dataset/op counts")

// benchScaleCfg is the reduced default used by the benchmarks.
func benchScaleCfg() harness.Scale {
	s := harness.DefaultScale().Mult(0.25 * *benchScale)
	return s
}

// reportTable attaches a figure's rows to the benchmark output and writes
// the full table to stdout once (benchtime=1x keeps this single-shot).
func reportTable(b *testing.B, t *harness.Table) {
	b.Helper()
	t.Fprint(os.Stdout)
	for _, row := range t.Rows {
		for _, c := range row.Cells {
			b.ReportMetric(c.Value, fmt.Sprintf("%s/%s", row.Label, c.Name))
		}
	}
}

func runFigure(b *testing.B, name string) {
	fn := harness.Figures[name]
	if fn == nil {
		b.Fatalf("unknown figure %s", name)
	}
	b.ResetTimer()
	var last *harness.Table
	for i := 0; i < b.N; i++ {
		t, err := fn(benchScaleCfg(), nil)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		last = t
	}
	b.StopTimer()
	if last != nil && b.N == 1 {
		reportTable(b, last)
	}
}

// BenchmarkFig2_BandwidthUtilization reproduces Figure 2: NVMe read/write
// bandwidth and capacity utilisation for the two baseline architectures as
// background threads scale (E1, E2).
func BenchmarkFig2_BandwidthUtilization(b *testing.B) { runFigure(b, "fig2") }

// BenchmarkFig3_CompactionOverhead reproduces Figure 3: capacity-tier
// compaction bandwidth vs threads, and the per-level compaction I/O
// breakdown showing deep levels dominating (E3, E4).
func BenchmarkFig3_CompactionOverhead(b *testing.B) { runFigure(b, "fig3") }

// BenchmarkFig6_IntervalCorrelation reproduces Figure 6a: the conditional
// probability that an object's next access interval stays under t given its
// past s intervals did (E5).
func BenchmarkFig6_IntervalCorrelation(b *testing.B) { runFigure(b, "fig6") }

// BenchmarkFig8_YCSB reproduces Figure 8: YCSB A–F throughput plus
// normalised median and P99 latency for all four engines (E6, E7).
func BenchmarkFig8_YCSB(b *testing.B) { runFigure(b, "fig8") }

// BenchmarkFig9a_Skew reproduces Figure 9a: YCSB-A throughput across key
// distribution skews (E8).
func BenchmarkFig9a_Skew(b *testing.B) { runFigure(b, "fig9a") }

// BenchmarkFig9b_ValueSize reproduces Figure 9b and §4.2's migration
// analysis: throughput vs value size, with migration page reads per object
// (E9, E14).
func BenchmarkFig9b_ValueSize(b *testing.B) { runFigure(b, "fig9b") }

// BenchmarkFig9c_NVMeRatio reproduces Figure 9c: throughput as the NVMe
// share of the dataset grows from 1% to 16% (E10).
func BenchmarkFig9c_NVMeRatio(b *testing.B) { runFigure(b, "fig9c") }

// BenchmarkFig10_LatencyBreakdown reproduces Figure 10: read/write median
// and P99 latency across workload skews (E11).
func BenchmarkFig10_LatencyBreakdown(b *testing.B) { runFigure(b, "fig10") }

// BenchmarkFig11_WriteTraffic reproduces Figure 11: per-tier write volume
// and space usage under a uniform 1 KiB-value workload (E12, E13).
func BenchmarkFig11_WriteTraffic(b *testing.B) { runFigure(b, "fig11") }

// BenchmarkPutThroughput measures raw single-engine put throughput on the
// simulated NVMe tier (not a paper figure; a sanity baseline).
func BenchmarkPutThroughput(b *testing.B) {
	inst, err := harness.Build(harness.KindHyperDB, harness.Config{
		NVMeCapacity: 256 << 20,
		Unthrottled:  true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer inst.Engine.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := inst.Engine.Put(ycsb.Key(int64(i)), []byte("benchmark-value-128b")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGetHot measures cached-read latency through the full stack.
func BenchmarkGetHot(b *testing.B) {
	inst, err := harness.Build(harness.KindHyperDB, harness.Config{
		NVMeCapacity: 256 << 20,
		Unthrottled:  true,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer inst.Engine.Close()
	for i := int64(0); i < 10000; i++ {
		inst.Engine.Put(ycsb.Key(i), []byte("benchmark-value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Engine.Get(ycsb.Key(int64(i % 10000))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation quantifies HyperDB's design choices one knob at a time
// (preemptive depth, T_clean, hot zone, index mirror) — the ablation study
// DESIGN.md calls out; not a paper figure.
func BenchmarkAblation(b *testing.B) { runFigure(b, "ablation") }
