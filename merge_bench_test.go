// End-to-end counter-coalescing benchmark: a wire server under a hot-key
// INCR workload (VSA-style counter aggregation), A/B between the drainer's
// delta folding and the unfolded baseline. Clients hammer a small, skewed
// counter keyspace over real TCP with deep pipelining; the drainer folds
// same-key deltas into one net-delta batch entry, so the metric that
// matters is logical acked writes per physical engine call — each folded
// op is a WAL record and a replication-log op that never existed. CI runs
// these with -benchtime=1x as a smoke test; BENCH_merge.json records the
// measured fold ratios.
package hyperdb_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"hyperdb"
	"hyperdb/internal/client"
	"hyperdb/internal/device"
	"hyperdb/internal/repl"
	"hyperdb/internal/server"
)

const (
	mergeBenchKeys     = 64 // counter keyspace: small and hot, the fold's home turf
	mergeBenchHotFrac  = 50 // percent of increments hitting the single hottest key
	mergeBenchPipeline = 16 // concurrent in-flight increments per connection
)

// BenchmarkMergeCounter measures acked increments/sec and the coalescing
// ratio at 1/8/32 client connections, folding on vs off. ns/op is per
// acked INCR; logicalWrites/dbCall is the headline ratio (1.0 means every
// increment paid its own engine write).
func BenchmarkMergeCounter(b *testing.B) {
	for _, clients := range []int{1, 8, 32} {
		for _, fold := range []bool{true, false} {
			b.Run(fmt.Sprintf("clients=%d/fold=%v", clients, fold), func(b *testing.B) {
				benchMergeCounter(b, clients, fold)
			})
		}
	}
}

func benchMergeCounter(b *testing.B, clients int, fold bool) {
	// The log tee measures replication/WAL bytes the workload generates:
	// folded deltas ship as one op, so log bytes drop with the fold ratio.
	rlog := repl.NewLog(repl.LogConfig{})
	db, err := hyperdb.Open(hyperdb.Options{
		Partitions: 4,
		NVMeDevice: device.New(device.NVMeProfile(256 << 20)),
		SATADevice: device.New(device.SATAProfile(1 << 30)),
		CacheBytes: 4 << 20,
		Tee:        rlog,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{DB: db, OwnDB: true, NoMergeFold: !fold})
	if err != nil {
		db.Close()
		b.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		db.Close()
		b.Fatal(err)
	}
	defer srv.Shutdown()

	keys := make([][]byte, mergeBenchKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("ctr-%03d", i))
	}
	pool := make([]*client.Client, clients)
	for i := range pool {
		c, err := client.Dial(client.Options{Addr: addr.String(), Conns: 1})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		pool[i] = c
	}

	var acked [mergeBenchKeys]atomic.Int64 // model: every acked delta, per key
	var next atomic.Int64
	var failed atomic.Int64
	b.ResetTimer()
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		for p := 0; p < mergeBenchPipeline; p++ {
			wg.Add(1)
			go func(cl, p int) {
				defer wg.Done()
				c := pool[cl]
				rng := rand.New(rand.NewSource(int64(cl*100 + p)))
				const grab = 16
				for {
					lo := int(next.Add(grab)) - grab
					if lo >= b.N {
						return
					}
					hi := lo + grab
					if hi > b.N {
						hi = b.N
					}
					for i := lo; i < hi; i++ {
						ki := 0
						if rng.Intn(100) >= mergeBenchHotFrac {
							ki = 1 + rng.Intn(mergeBenchKeys-1)
						}
						if _, err := c.Incr(keys[ki], 1); err != nil {
							failed.Add(1)
						} else {
							acked[ki].Add(1)
						}
					}
				}
			}(cl, p)
		}
	}
	wg.Wait()
	b.StopTimer()
	if n := failed.Load(); n > 0 {
		b.Fatalf("%d increments failed", n)
	}
	// Exactness: the committed counters must equal the acked model even
	// though folding rewrote how the deltas were batched.
	check, err := client.Dial(client.Options{Addr: addr.String(), Conns: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer check.Close()
	for i, k := range keys {
		want := acked[i].Load()
		if want == 0 {
			continue
		}
		got, err := check.Incr(k, 0)
		if err != nil || got != want {
			b.Fatalf("counter %s: %d (err %v), want %d", k, got, err, want)
		}
	}

	st := srv.Stats()
	b.ReportMetric(st.LogicalWritesPerDBCall(), "logicalWrites/dbCall")
	if b.N > 0 {
		// Direct fold effect: engine batch entries (≙ WAL records ≙
		// replication ops) submitted per acked increment. 1.0 = unfolded.
		b.ReportMetric(float64(st.WriteOps.Load())/float64(b.N), "engineEntries/op")
		b.ReportMetric(float64(rlog.Bytes())/float64(b.N), "replLogB/op")
	}
	b.ReportMetric(float64(st.MergeFolded.Load()), "folded")
}
