// Parallel microbenchmarks for the foreground hot path: Put/Get (and their
// batch counterparts) at 1/4/8/16 client goroutines over unthrottled devices
// with background workers disabled, so the numbers isolate the software path
// — tracker, watermark checks, zone index, cache — from the simulated device
// model. CI runs these with -benchtime=1x as a smoke test; BENCH_hotpath.json
// records the measured trajectory.
package hyperdb_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hyperdb"
	"hyperdb/internal/ycsb"
)

const (
	hotPathKeys      = 1 << 15 // working set; fits NVMe so updates stay in place
	hotPathValueSize = 128
)

var hotPathGoroutines = []int{1, 4, 8, 16}

func hotPathValue() []byte {
	v := make([]byte, hotPathValueSize)
	for i := range v {
		v[i] = byte('a' + i%26)
	}
	return v
}

// hotPathDB opens a DB sized so the whole working set stays in the
// performance tier: no write stalls, no migration — pure foreground path.
func hotPathDB(b *testing.B) *hyperdb.DB {
	b.Helper()
	db, err := hyperdb.Open(hyperdb.Options{
		NVMeCapacity:      1 << 30,
		SATACapacity:      4 << 30,
		Unthrottled:       true,
		DisableBackground: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func hotPathPreload(b *testing.B, db *hyperdb.DB) {
	b.Helper()
	v := hotPathValue()
	for i := int64(0); i < hotPathKeys; i++ {
		if err := db.Put(ycsb.Key(i), v); err != nil {
			b.Fatal(err)
		}
	}
}

// runHotPath spreads b.N operations over g goroutines, claiming work in
// chunks so the dispatch counter stays off the measured path.
func runHotPath(b *testing.B, g int, op func(i int)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	const chunk = 256
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(g)
	for t := 0; t < g; t++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= b.N {
					return
				}
				hi := lo + chunk
				if hi > b.N {
					hi = b.N
				}
				for i := lo; i < hi; i++ {
					op(i)
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
}

func BenchmarkHotPathPut(b *testing.B) {
	for _, g := range hotPathGoroutines {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			db := hotPathDB(b)
			defer db.Close()
			hotPathPreload(b, db)
			v := hotPathValue()
			runHotPath(b, g, func(i int) {
				if err := db.Put(ycsb.Key(int64(i%hotPathKeys)), v); err != nil {
					b.Error(err)
				}
			})
		})
	}
}

func BenchmarkHotPathGet(b *testing.B) {
	for _, g := range hotPathGoroutines {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			db := hotPathDB(b)
			defer db.Close()
			hotPathPreload(b, db)
			runHotPath(b, g, func(i int) {
				if _, err := db.Get(ycsb.Key(int64(i % hotPathKeys))); err != nil {
					b.Error(err)
				}
			})
		})
	}
}

// batchSize is the ops-per-call size for the batch benchmarks; ns/op numbers
// are per batch, so divide by batchSize to compare with Put/Get.
const batchSize = 64

func BenchmarkHotPathWriteBatch(b *testing.B) {
	for _, g := range hotPathGoroutines {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			db := hotPathDB(b)
			defer db.Close()
			hotPathPreload(b, db)
			v := hotPathValue()
			// Per-goroutine reusable op slices: the batch API borrows, never
			// retains.
			pool := sync.Pool{New: func() any {
				ops := make([]hyperdb.BatchOp, batchSize)
				for i := range ops {
					ops[i].Value = v
				}
				return &ops
			}}
			runHotPath(b, g, func(i int) {
				ops := *pool.Get().(*[]hyperdb.BatchOp)
				base := int64(i) * batchSize
				for j := range ops {
					ops[j].Key = ycsb.Key((base + int64(j)) % hotPathKeys)
				}
				if err := db.WriteBatch(ops); err != nil {
					b.Error(err)
				}
				pool.Put(&ops)
			})
		})
	}
}

func BenchmarkHotPathMultiGet(b *testing.B) {
	for _, g := range hotPathGoroutines {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			db := hotPathDB(b)
			defer db.Close()
			hotPathPreload(b, db)
			pool := sync.Pool{New: func() any {
				keys := make([][]byte, batchSize)
				return &keys
			}}
			runHotPath(b, g, func(i int) {
				keys := *pool.Get().(*[][]byte)
				base := int64(i) * batchSize
				for j := range keys {
					keys[j] = ycsb.Key((base + int64(j)) % hotPathKeys)
				}
				vals, err := db.MultiGet(keys)
				if err != nil {
					b.Error(err)
				} else if vals[0] == nil {
					b.Error("unexpected miss")
				}
				pool.Put(&keys)
			})
		})
	}
}

// BenchmarkHotPathMixed is the acceptance metric: aggregate 50/50 Get+Put
// throughput under parallel clients.
func BenchmarkHotPathMixed(b *testing.B) {
	for _, g := range hotPathGoroutines {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			db := hotPathDB(b)
			defer db.Close()
			hotPathPreload(b, db)
			v := hotPathValue()
			runHotPath(b, g, func(i int) {
				k := ycsb.Key(int64(i % hotPathKeys))
				if i%2 == 0 {
					if _, err := db.Get(k); err != nil {
						b.Error(err)
					}
				} else {
					if err := db.Put(k, v); err != nil {
						b.Error(err)
					}
				}
			})
		})
	}
}
