module hyperdb

go 1.22
