// Cold-tier compression benchmark: the block-codec A/B behind
// BENCH_compress.json. Each iteration puts one compressible YCSB-style
// value; the NVMe tier is sized well under the written set so migration
// demotes the cold majority to the SATA capacity levels, where the codec
// applies. After the device traffic settles the benchmark reports stored
// vs raw cold-tier bytes (the compression ratio), total SATA write traffic
// per op (compaction bytes moved), and the cold-read check that compressed
// blocks decode back byte-identical. CI runs this with -benchtime=1x as a
// smoke test; hyperbench -workload=compress is the interactive twin.
package hyperdb_test

import (
	"fmt"
	"testing"

	"hyperdb"
	"hyperdb/internal/device"
)

const compressBenchValue = 1024 // value bytes, ~4x compressible

// BenchmarkCompressColdTier measures the write path with the capacity-tier
// codec off vs on. ns/op is per Put (zone-tier latency must not regress);
// coldStoredB/op vs coldRawB/op is the on-disk saving and sataWriteB/op
// the background traffic the codec avoided.
func BenchmarkCompressColdTier(b *testing.B) {
	for _, mode := range []string{"off", "on"} {
		b.Run("compress="+mode, func(b *testing.B) {
			benchCompressColdTier(b, mode)
		})
	}
}

func benchCompressColdTier(b *testing.B, mode string) {
	nvmeCap := int64(b.N)*(compressBenchValue+16)/6 + 2<<20
	db, err := hyperdb.Open(hyperdb.Options{
		Partitions: 4,
		NVMeDevice: device.New(device.UnthrottledProfile("nvme", nvmeCap)),
		SATADevice: device.New(device.UnthrottledProfile("sata", 8<<30)),
		CacheBytes: 1 << 20,
		Compress:   mode,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	value := make([]byte, compressBenchValue)
	for i := range value {
		value[i] = byte('a' + (i/64)%16)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("cmp-%09d", i))
		copy(value, fmt.Sprintf("stamp-%09d,", i))
		if err := db.Put(key, value); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := db.DrainBackground(); err != nil {
		b.Fatal(err)
	}

	// Cold reads decode demoted blocks; the earliest keys demote first.
	probes := b.N / 100
	if probes < 1 {
		probes = 1
	}
	for i := 0; i < probes; i++ {
		key := []byte(fmt.Sprintf("cmp-%09d", i*100%b.N))
		v, err := db.Get(key)
		if err != nil {
			b.Fatalf("compress=%s: cold read %q: %v", mode, key, err)
		}
		if len(v) != compressBenchValue {
			b.Fatalf("compress=%s: cold read %q: %d bytes, want %d", mode, key, len(v), compressBenchValue)
		}
	}

	st := db.Stats()
	var raw, stored uint64
	for _, lv := range st.Levels {
		raw += lv.RawBytes
		stored += lv.StoredBytes
	}
	n := float64(b.N)
	b.ReportMetric(float64(stored)/n, "coldStoredB/op")
	b.ReportMetric(float64(raw)/n, "coldRawB/op")
	if stored > 0 {
		b.ReportMetric(float64(raw)/float64(stored), "ratio")
	}
	b.ReportMetric(float64(st.SATA.WriteBytes+st.SATA.BgWriteBytes)/n, "sataWriteB/op")
}
